//! The coordinator↔shard boundary: [`ShardTransport`] and the shared
//! sequential scatter.
//!
//! A scatter-gather coordinator does not care *where* a shard runs — only
//! that it can (a) bound the best score any of its residents could achieve
//! and (b) execute a bounded top-k.  [`ShardTransport`] captures exactly
//! that contract, so the in-process [`ShardedEngine`](crate::ShardedEngine)
//! and a socket-backed remote coordinator (`ssrq-net`) share one
//! best-first, threshold-forwarding visit loop ([`scatter_sequential`]) and
//! one deterministic merge ([`merge_ranked`]) — the exactness argument is
//! proved once and holds for both deployments.

use crate::stats::ShardOutcome;
use ssrq_core::{combine, QueryRequest, QueryResult, RankedUser, TopK};
use ssrq_spatial::{Point, Rect};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// How a coordinator visits its shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScatterMode {
    /// [`scatter_sequential`]: one shard at a time in ascending
    /// lower-bound order — each shard sees the `f_k` of everything
    /// gathered so far, maximizing threshold pruning at the cost of
    /// serialized latency.
    #[default]
    Sequential,
    /// [`scatter_speculative`]: every launchable shard fires concurrently
    /// at the caller's cap; the running `f_k` is pushed to shards still
    /// in flight as it tightens.  Minimizes wall-clock at the cost of
    /// speculative work a sequential visit would have pruned.
    Speculative,
}

impl std::str::FromStr for ScatterMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        match s {
            "sequential" => Ok(ScatterMode::Sequential),
            "speculative" => Ok(ScatterMode::Speculative),
            other => Err(format!(
                "unknown scatter mode {other:?} (expected \"sequential\" or \"speculative\")"
            )),
        }
    }
}

impl std::fmt::Display for ScatterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ScatterMode::Sequential => "sequential",
            ScatterMode::Speculative => "speculative",
        })
    }
}

/// A monotonically tightening score cap shared across concurrent shard
/// executions — the speculative scatter's running `f_k`.
///
/// Stores the `f64` bit pattern in an atomic; [`tighten`](Self::tighten)
/// only ever lowers the value (CAS-min), so readers may observe a stale
/// (larger) cap but never a wrong (smaller-than-published) one.  A stale
/// cap merely prunes less — it cannot drop a global top-k entry, because
/// an entry pruned at any cap ≥ the final `f_k` was not in the top-k.
#[derive(Debug)]
pub struct ThresholdCell(AtomicU64);

impl ThresholdCell {
    /// A cell starting at `initial` (use `INFINITY` for "no cap yet").
    pub fn new(initial: f64) -> Self {
        ThresholdCell(AtomicU64::new(initial.to_bits()))
    }

    /// The current cap.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Acquire))
    }

    /// Lowers the cap to `candidate` if it is strictly smaller than the
    /// current value; returns whether the cell changed.  `NaN` candidates
    /// are ignored.
    pub fn tighten(&self, candidate: f64) -> bool {
        let mut current = self.0.load(Ordering::Acquire);
        loop {
            // `partial_cmp` makes the NaN case explicit: a NaN candidate
            // compares as `None` and is ignored, as promised.
            if candidate.partial_cmp(&f64::from_bits(current)) != Some(std::cmp::Ordering::Less) {
                return false;
            }
            match self.0.compare_exchange_weak(
                current,
                candidate.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => current = actual,
            }
        }
    }
}

/// What a coordinator does when a shard fails mid-query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FailurePolicy {
    /// The query fails with the shard's error (the default — exactness
    /// over availability).
    #[default]
    Fail,
    /// The coordinator merges what the surviving shards returned and flags
    /// the result [`degraded`](ssrq_core::QueryResult::degraded); the
    /// failed shard is named in the per-shard outcomes
    /// ([`ShardOutcome::Failed`]).
    Degrade,
}

/// One shard as a coordinator sees it: a score bound and a bounded top-k
/// executor, location-agnostic (in-process engine or remote process).
pub trait ShardTransport {
    /// The transport's failure type ([`CoreError`](ssrq_core::CoreError)
    /// in-process, an IO/wire error remotely).
    type Error: std::fmt::Display;

    /// Lower bound on the score any admissible resident of this shard can
    /// achieve for `request` — `INFINITY` when the shard provably cannot
    /// contribute (empty, filter-disjoint, unlocated origin).  Must be
    /// computable without a search (the coordinator calls it for every
    /// shard before visiting any).
    fn score_lower_bound(&self, request: &QueryRequest) -> f64;

    /// Runs the shard's bounded top-k over its residents.
    ///
    /// # Errors
    ///
    /// Whatever the underlying engine or wire reports; the coordinator's
    /// [`FailurePolicy`] decides what happens next.
    fn execute(&mut self, request: &QueryRequest) -> Result<QueryResult, Self::Error>;

    /// Runs the shard's bounded top-k while observing a concurrently
    /// tightening score cap — the speculative scatter's running `f_k`.
    ///
    /// The default implementation ignores the cell and runs
    /// [`execute`](Self::execute) at the request's own cap, which is
    /// always correct (the cell only ever *adds* pruning); transports
    /// with a way to push a mid-flight cap to the executor (a remote
    /// shard's tighten frame) override this.
    ///
    /// # Errors
    ///
    /// Same as [`execute`](Self::execute).
    fn execute_with_threshold(
        &mut self,
        request: &QueryRequest,
        _threshold: &ThresholdCell,
    ) -> Result<QueryResult, Self::Error> {
        self.execute(request)
    }

    /// Human-readable shard identity for failure reports
    /// (e.g. `"local shard 2"`, `"unix:/tmp/ssrq-2.sock"`).
    fn describe(&self) -> String;
}

/// The score lower bound backing every [`ShardTransport::score_lower_bound`]
/// implementation: `(1 − α) · mindist(origin, rect) / spatial_norm`, or
/// `INFINITY` for an empty shard (`rect` is `None`), an unlocated origin,
/// or a bounding rectangle disjoint from the request's spatial filter.
pub fn shard_score_lower_bound(
    rect: Option<Rect>,
    request: &QueryRequest,
    origin: Option<Point>,
    spatial_norm: f64,
) -> f64 {
    let (Some(origin), Some(rect)) = (origin, rect) else {
        return f64::INFINITY;
    };
    if let Some(window) = request.within() {
        if !rect.intersects(&window) {
            return f64::INFINITY;
        }
    }
    combine(
        request.alpha(),
        0.0,
        rect.min_distance(origin) / spatial_norm,
    )
}

/// A shard failure that aborted a [`FailurePolicy::Fail`] scatter.
#[derive(Debug)]
pub struct ScatterError<E> {
    /// Index of the failing shard.
    pub shard: usize,
    /// The failing shard's [`ShardTransport::describe`] identity.
    pub describe: String,
    /// The underlying transport error.
    pub error: E,
}

impl<E: std::fmt::Display> std::fmt::Display for ScatterError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "shard {} ({}) failed: {}",
            self.shard, self.describe, self.error
        )
    }
}

impl<E: std::fmt::Display + std::fmt::Debug> std::error::Error for ScatterError<E> {}

/// What a [`scatter_sequential`] pass gathered.
#[derive(Debug, Clone)]
pub struct SequentialScatter {
    /// Every entry the executed shards returned (unmerged, unsorted).
    pub entries: Vec<RankedUser>,
    /// One outcome per shard, indexed by shard id.
    pub outcomes: Vec<ShardOutcome>,
    /// `true` when at least one shard failed under
    /// [`FailurePolicy::Degrade`] — its residents were never consulted.
    pub degraded: bool,
}

/// The shared coordinator loop: visits shards **sequentially in ascending
/// lower-bound order**, forwards the running `f_k` threshold to each next
/// shard through the request's
/// [`max_score`](ssrq_core::QueryRequest::max_score) admission cutoff, and
/// skips shards whose bound cannot beat it.
///
/// `base` must already be the broadcast form: validated, with the query
/// user's [`origin`](ssrq_core::QueryRequest::origin) resolved — the loop
/// never talks to a dataset.
///
/// Sequential visiting maximizes what the threshold can prune (each shard
/// sees the `f_k` of everything gathered so far), which is the right mode
/// for per-query workers in a batch and the only mode where a remote
/// coordinator's forwarding is deterministic.
///
/// # Errors
///
/// Under [`FailurePolicy::Fail`], the first shard failure aborts with a
/// [`ScatterError`] naming the shard.  Under [`FailurePolicy::Degrade`]
/// failures are recorded as [`ShardOutcome::Failed`] and the scatter
/// completes with `degraded = true`.
pub fn scatter_sequential<T: ShardTransport>(
    transports: &mut [T],
    base: &QueryRequest,
    policy: FailurePolicy,
) -> Result<SequentialScatter, ScatterError<T::Error>> {
    let n = transports.len();
    let bounds: Vec<f64> = transports
        .iter()
        .map(|t| t.score_lower_bound(base))
        .collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| bounds[a].total_cmp(&bounds[b]).then(a.cmp(&b)));

    let mut topk = TopK::for_request(base);
    let mut entries: Vec<RankedUser> = Vec::new();
    let mut outcomes: Vec<Option<ShardOutcome>> = vec![None; n];
    let mut degraded = false;
    for &s in &order {
        let threshold = topk.fk();
        if bounds[s] >= threshold {
            outcomes[s] = Some(ShardOutcome::Skipped {
                lower_bound: bounds[s],
            });
            continue;
        }
        let shard_request = base.clone().with_max_score_at_most(threshold);
        match transports[s].execute(&shard_request) {
            Ok(result) => {
                for &entry in &result.ranked {
                    topk.consider(entry);
                }
                outcomes[s] = Some(ShardOutcome::Executed(result.stats));
                entries.extend(result.ranked);
            }
            Err(error) => match policy {
                FailurePolicy::Fail => {
                    return Err(ScatterError {
                        shard: s,
                        describe: transports[s].describe(),
                        error,
                    });
                }
                FailurePolicy::Degrade => {
                    degraded = true;
                    outcomes[s] = Some(ShardOutcome::Failed {
                        shard: transports[s].describe(),
                        detail: error.to_string(),
                    });
                }
            },
        }
    }
    Ok(SequentialScatter {
        entries,
        outcomes: outcomes
            .into_iter()
            .map(|o| o.expect("every shard has an outcome"))
            .collect(),
        degraded,
    })
}

/// The concurrent coordinator loop: fires every launchable shard at once
/// at the caller's cap, then pushes the running `f_k` to shards still in
/// flight through a shared [`ThresholdCell`].
///
/// Shards whose lower bound cannot beat the caller's own
/// [`max_score`](ssrq_core::QueryRequest::max_score) are skipped up
/// front; everything else executes concurrently via
/// [`ShardTransport::execute_with_threshold`].  As each shard returns,
/// its entries tighten a shared running top-k and the cell is lowered to
/// the new `f_k` — a tighten-aware transport forwards that to its
/// executor mid-flight.
///
/// **Exactness:** the gathered answer is bit-identical to
/// [`scatter_sequential`]'s.  Every entry in the global top-k scores
/// strictly below the final `f_k`, hence below every intermediate cap any
/// shard observed, so no such entry can be pruned; and
/// [`merge_ranked`]'s deterministic rebuild makes the final list
/// independent of arrival order.  The difference is only *work*: a shard
/// the sequential visit would have skipped or pruned harder runs more
/// speculatively here.
///
/// `base` must already be the broadcast form: validated, origin resolved.
///
/// # Errors
///
/// Under [`FailurePolicy::Fail`] the whole scatter fails when any shard
/// does; the remaining in-flight shards are cancelled by collapsing the
/// cell to `-INFINITY`, and the reported [`ScatterError`] names the
/// failed shard earliest in the (deterministic) lower-bound visit order.
/// Under [`FailurePolicy::Degrade`] failures become
/// [`ShardOutcome::Failed`] and the scatter completes `degraded`.
pub fn scatter_speculative<T>(
    transports: &mut [T],
    base: &QueryRequest,
    policy: FailurePolicy,
) -> Result<SequentialScatter, ScatterError<T::Error>>
where
    T: ShardTransport + Send,
    T::Error: Send,
{
    let n = transports.len();
    let bounds: Vec<f64> = transports
        .iter()
        .map(|t| t.score_lower_bound(base))
        .collect();
    let caller_cap = base.max_score().unwrap_or(f64::INFINITY);
    let cell = ThresholdCell::new(caller_cap);
    let topk = Mutex::new(TopK::for_request(base));

    let mut slots: Vec<Option<Result<QueryResult, T::Error>>> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(n);
        for (s, transport) in transports.iter_mut().enumerate() {
            if bounds[s] >= caller_cap {
                handles.push(None);
                continue;
            }
            let cell = &cell;
            let topk = &topk;
            handles.push(Some(scope.spawn(move || {
                let outcome = transport.execute_with_threshold(base, cell);
                match &outcome {
                    Ok(result) => {
                        let mut topk = topk.lock().expect("speculative top-k lock");
                        for &entry in &result.ranked {
                            topk.consider(entry);
                        }
                        cell.tighten(topk.fk());
                    }
                    Err(_) => {
                        if policy == FailurePolicy::Fail {
                            // The query is lost either way — collapse the
                            // cap so tighten-aware siblings stop early.
                            cell.tighten(f64::NEG_INFINITY);
                        }
                    }
                }
                outcome
            })));
        }
        slots = handles
            .into_iter()
            .map(|h| h.map(|h| h.join().expect("speculative shard worker panicked")))
            .collect();
    });

    if policy == FailurePolicy::Fail {
        // Deterministic failure report: among the failed shards, name the
        // one the sequential visit order reaches first.
        let mut failed: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter(|(_, slot)| matches!(slot, Some(Err(_))))
            .map(|(s, _)| s)
            .collect();
        failed.sort_by(|&a, &b| bounds[a].total_cmp(&bounds[b]).then(a.cmp(&b)));
        if let Some(&s) = failed.first() {
            let describe = transports[s].describe();
            let Some(Err(error)) = slots.into_iter().nth(s).flatten() else {
                unreachable!("slot {s} was observed failed");
            };
            return Err(ScatterError {
                shard: s,
                describe,
                error,
            });
        }
    }

    let mut entries: Vec<RankedUser> = Vec::new();
    let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(n);
    let mut degraded = false;
    for (s, slot) in slots.into_iter().enumerate() {
        outcomes.push(match slot {
            None => ShardOutcome::Skipped {
                lower_bound: bounds[s],
            },
            Some(Ok(result)) => {
                entries.extend(result.ranked.iter().copied());
                ShardOutcome::Executed(result.stats)
            }
            Some(Err(error)) => {
                degraded = true;
                ShardOutcome::Failed {
                    shard: transports[s].describe(),
                    detail: error.to_string(),
                }
            }
        });
    }
    Ok(SequentialScatter {
        entries,
        outcomes,
        degraded,
    })
}

/// The deterministic gather merge: global ascending `(score, user)` order
/// over the (disjoint) per-shard entries, truncated at `k`.  Rebuilding the
/// list from scratch makes the answer independent of shard visit order and
/// worker scheduling.
pub fn merge_ranked(mut entries: Vec<RankedUser>, k: usize) -> Vec<RankedUser> {
    entries.sort_by(|a, b| {
        a.score
            .total_cmp(&b.score)
            .then_with(|| a.user.cmp(&b.user))
    });
    entries.truncate(k);
    entries
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_core::{Algorithm, QueryStats};

    /// A scripted shard: fixed bound, canned entries, optional failure.
    struct FakeShard {
        bound: f64,
        entries: Vec<RankedUser>,
        fail: bool,
        /// The `max_score` cutoffs of the requests this shard executed.
        seen_cutoffs: Vec<Option<f64>>,
    }

    impl FakeShard {
        fn new(bound: f64, scores: &[(u32, f64)]) -> Self {
            FakeShard {
                bound,
                entries: scores
                    .iter()
                    .map(|&(user, score)| RankedUser {
                        user,
                        score,
                        social: score,
                        spatial: score,
                    })
                    .collect(),
                fail: false,
                seen_cutoffs: Vec::new(),
            }
        }

        fn failing(bound: f64) -> Self {
            let mut shard = FakeShard::new(bound, &[]);
            shard.fail = true;
            shard
        }
    }

    impl ShardTransport for FakeShard {
        type Error = String;

        fn score_lower_bound(&self, _request: &QueryRequest) -> f64 {
            self.bound
        }

        fn execute(&mut self, request: &QueryRequest) -> Result<QueryResult, String> {
            self.seen_cutoffs.push(request.max_score());
            if self.fail {
                return Err("scripted failure".into());
            }
            let cutoff = request.max_score().unwrap_or(f64::INFINITY);
            let ranked: Vec<RankedUser> = self
                .entries
                .iter()
                .copied()
                .filter(|e| e.score < cutoff)
                .take(request.k())
                .collect();
            Ok(QueryResult {
                ranked,
                k: request.k(),
                degraded: false,
                stats: QueryStats::default(),
            })
        }

        fn describe(&self) -> String {
            format!("fake(bound={})", self.bound)
        }
    }

    fn request(k: usize) -> QueryRequest {
        QueryRequest::for_user(0)
            .k(k)
            .alpha(0.5)
            .algorithm(Algorithm::Exhaustive)
            .build_unvalidated()
    }

    #[test]
    fn visits_best_first_and_forwards_the_threshold() {
        // Shard 1 has the better bound, so it runs first and its f_k is
        // forwarded to shard 0 as the admission cutoff.
        let mut shards = vec![
            FakeShard::new(0.15, &[(7, 0.45), (8, 0.9)]),
            FakeShard::new(0.0, &[(1, 0.1), (2, 0.2)]),
        ];
        let base = request(2);
        let scatter = scatter_sequential(&mut shards, &base, FailurePolicy::Fail).unwrap();
        assert_eq!(shards[1].seen_cutoffs, vec![None]);
        assert_eq!(shards[0].seen_cutoffs, vec![Some(0.2)]);
        assert!(!scatter.degraded);
        let ranked = merge_ranked(scatter.entries, 2);
        assert_eq!(
            ranked.iter().map(|e| (e.user, e.score)).collect::<Vec<_>>(),
            vec![(1, 0.1), (2, 0.2)]
        );
    }

    #[test]
    fn skips_shards_whose_bound_cannot_beat_the_threshold() {
        let mut shards = vec![
            FakeShard::new(0.0, &[(1, 0.1), (2, 0.2)]),
            FakeShard::new(0.5, &[(9, 0.55)]),
        ];
        let base = request(2);
        let scatter = scatter_sequential(&mut shards, &base, FailurePolicy::Fail).unwrap();
        assert!(shards[1].seen_cutoffs.is_empty(), "shard 1 must be skipped");
        assert!(matches!(
            scatter.outcomes[1],
            ShardOutcome::Skipped { lower_bound } if lower_bound == 0.5
        ));
    }

    #[test]
    fn fail_policy_aborts_with_the_shard_named() {
        let mut shards = vec![FakeShard::new(0.0, &[(1, 0.1)]), FakeShard::failing(0.01)];
        let err = scatter_sequential(&mut shards, &request(5), FailurePolicy::Fail).unwrap_err();
        assert_eq!(err.shard, 1);
        assert!(err.to_string().contains("scripted failure"));
    }

    #[test]
    fn degrade_policy_records_the_failure_and_flags_the_scatter() {
        let mut shards = vec![FakeShard::new(0.0, &[(1, 0.1)]), FakeShard::failing(0.01)];
        let scatter = scatter_sequential(&mut shards, &request(5), FailurePolicy::Degrade).unwrap();
        assert!(scatter.degraded);
        assert!(matches!(
            &scatter.outcomes[1],
            ShardOutcome::Failed { detail, .. } if detail.contains("scripted failure")
        ));
        // The surviving shard's entries are still gathered.
        assert_eq!(scatter.entries.len(), 1);
    }

    #[test]
    fn merge_ranked_is_deterministic_on_score_ties() {
        let entry = |user, score| RankedUser {
            user,
            score,
            social: score,
            spatial: score,
        };
        let merged = merge_ranked(vec![entry(9, 0.2), entry(3, 0.2), entry(5, 0.1)], 2);
        assert_eq!(
            merged.iter().map(|e| e.user).collect::<Vec<_>>(),
            vec![5, 3]
        );
    }

    #[test]
    fn threshold_cell_only_ever_tightens() {
        let cell = ThresholdCell::new(f64::INFINITY);
        assert_eq!(cell.get(), f64::INFINITY);
        assert!(cell.tighten(0.5));
        assert_eq!(cell.get(), 0.5);
        assert!(!cell.tighten(0.5), "equal cap is not a change");
        assert!(!cell.tighten(0.9), "loosening is refused");
        assert!(!cell.tighten(f64::NAN), "NaN is ignored");
        assert_eq!(cell.get(), 0.5);
        assert!(cell.tighten(f64::NEG_INFINITY));
        assert_eq!(cell.get(), f64::NEG_INFINITY);
    }

    #[test]
    fn speculative_scatter_matches_sequential_bit_for_bit() {
        let script: &[(f64, &[(u32, f64)])] = &[
            (0.15, &[(7, 0.45), (8, 0.9)]),
            (0.0, &[(1, 0.1), (2, 0.2)]),
            (0.05, &[(4, 0.3)]),
        ];
        let build = || -> Vec<FakeShard> {
            script
                .iter()
                .map(|&(bound, scores)| FakeShard::new(bound, scores))
                .collect()
        };
        let base = request(2);
        let mut sequential = build();
        let seq = scatter_sequential(&mut sequential, &base, FailurePolicy::Fail).unwrap();
        let mut speculative = build();
        let spec = scatter_speculative(&mut speculative, &base, FailurePolicy::Fail).unwrap();
        let key = |entries: Vec<RankedUser>| {
            merge_ranked(entries, base.k())
                .iter()
                .map(|e| (e.user, e.score.to_bits()))
                .collect::<Vec<_>>()
        };
        assert_eq!(key(seq.entries), key(spec.entries));
        assert!(!spec.degraded);
        // Every launched shard saw the caller's cap (None here), not a
        // sibling's threshold — the tightening rides the cell instead.
        for shard in &speculative {
            assert_eq!(shard.seen_cutoffs, vec![None]);
        }
    }

    #[test]
    fn speculative_scatter_preskips_on_the_callers_cap() {
        let mut shards = vec![
            FakeShard::new(0.0, &[(1, 0.1)]),
            FakeShard::new(0.7, &[(9, 0.75)]),
        ];
        let base = QueryRequest::for_user(0)
            .k(2)
            .alpha(0.5)
            .algorithm(Algorithm::Exhaustive)
            .max_score(0.5)
            .build_unvalidated();
        let scatter = scatter_speculative(&mut shards, &base, FailurePolicy::Fail).unwrap();
        assert!(shards[1].seen_cutoffs.is_empty(), "shard 1 must be skipped");
        assert!(matches!(
            scatter.outcomes[1],
            ShardOutcome::Skipped { lower_bound } if lower_bound == 0.7
        ));
        assert_eq!(shards[0].seen_cutoffs, vec![Some(0.5)]);
    }

    #[test]
    fn speculative_fail_policy_names_the_best_bound_failure() {
        // Both shards fail; the error must deterministically name the one
        // the sequential visit order reaches first (smaller bound).
        let mut shards = vec![FakeShard::failing(0.3), FakeShard::failing(0.1)];
        let err = scatter_speculative(&mut shards, &request(5), FailurePolicy::Fail).unwrap_err();
        assert_eq!(err.shard, 1);
        assert!(err.to_string().contains("scripted failure"));
    }

    #[test]
    fn speculative_degrade_policy_keeps_the_survivors() {
        let mut shards = vec![FakeShard::new(0.0, &[(1, 0.1)]), FakeShard::failing(0.01)];
        let scatter =
            scatter_speculative(&mut shards, &request(5), FailurePolicy::Degrade).unwrap();
        assert!(scatter.degraded);
        assert!(matches!(
            &scatter.outcomes[1],
            ShardOutcome::Failed { detail, .. } if detail.contains("scripted failure")
        ));
        assert_eq!(scatter.entries.len(), 1);
    }

    #[test]
    fn lower_bound_handles_empty_and_filtered_shards() {
        let base = request(2);
        let origin = Some(Point::new(0.0, 0.0));
        assert_eq!(
            shard_score_lower_bound(None, &base, origin, 1.0),
            f64::INFINITY
        );
        let rect = Some(Rect::new(Point::new(3.0, 4.0), Point::new(5.0, 6.0)));
        assert_eq!(
            shard_score_lower_bound(rect, &base, None, 1.0),
            f64::INFINITY
        );
        // (1 - 0.5) * mindist(origin, rect) / norm = 0.5 * 5 / 10.
        let bound = shard_score_lower_bound(rect, &base, origin, 10.0);
        assert!((bound - 0.25).abs() < 1e-12);
    }
}
