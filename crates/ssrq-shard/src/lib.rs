//! Sharded scatter-gather serving for the SSRQ engine.
//!
//! A single [`GeoSocialEngine`](ssrq_core::GeoSocialEngine) stops scaling
//! when the dataset no longer fits one machine's memory (or one NUMA
//! node's bandwidth).  This crate adds the horizontal layer: a
//! [`ShardedEngine`] partitions the dataset across N per-shard engines and
//! answers every [`QueryRequest`](ssrq_core::QueryRequest) **exactly** by
//! scatter-gather.
//!
//! # Design
//!
//! * **Partitioning** ([`Partitioning`]) — the social graph is replicated
//!   (social distances are global); *locations* are partitioned, either by
//!   a stable user-id hash or by spatial tiling (compact shard
//!   rectangles).  Shard datasets inherit the global normalization
//!   constants, so per-shard scores are bit-identical to single-engine
//!   scores.
//! * **Scatter** — the coordinator resolves the query user's location once
//!   and broadcasts it as the request's
//!   [`origin`](ssrq_core::QueryRequest::origin), so a shard that does not
//!   host the query user still measures every spatial distance correctly.
//!   Shards run their ordinary bounded top-k in parallel
//!   (`std::thread::scope` workers, one
//!   [`QueryContext`](ssrq_core::QueryContext) each).
//! * **Bounding** — shards are visited best-first by their score lower
//!   bound `(1 − α) · mindist(origin, rect) / norm`; once `k` results are
//!   gathered the running `f_k` is forwarded to later shards through the
//!   [`max_score`](ssrq_core::QueryRequest::max_score) admission cutoff,
//!   and shards whose bound cannot beat it are skipped outright
//!   ([`ShardStats`] counts both).
//! * **Gather** — the per-shard top-k lists (disjoint: every user lives on
//!   exactly one shard) merge into the global ascending `(score, user)`
//!   order, truncated at `k` — identical to the unpartitioned engine's
//!   answer for all twelve algorithms (oracle-tested).  For first-result
//!   latency, [`ShardedSession::stream`] instead heap-merges the shards'
//!   pull-lazy streams.
//! * **Updates** — [`ShardedEngine::update_location`] routes to the owning
//!   shard and migrates the user when a spatial partition boundary is
//!   crossed; [`ShardedEngine::rebalance`] re-packs drifted populations.
//!
//! ```
//! use ssrq_core::{Algorithm, GeoSocialDataset, QueryRequest};
//! use ssrq_graph::GraphBuilder;
//! use ssrq_shard::{Partitioning, ShardedEngine};
//! use ssrq_spatial::Point;
//!
//! let graph = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
//! let locations = vec![
//!     Some(Point::new(0.1, 0.5)),
//!     Some(Point::new(0.9, 0.5)),
//!     Some(Point::new(0.2, 0.5)),
//!     Some(Point::new(0.8, 0.5)),
//! ];
//! let dataset = GeoSocialDataset::new(graph, locations).unwrap();
//! let sharded = ShardedEngine::builder(dataset)
//!     .shards(2)
//!     .partitioning(Partitioning::SpatialGrid { cells_per_axis: 4 })
//!     .build()
//!     .unwrap();
//! let request = QueryRequest::for_user(0)
//!     .k(2)
//!     .alpha(0.5)
//!     .algorithm(Algorithm::Ais)
//!     .build()
//!     .unwrap();
//! let (result, stats) = sharded.run_with_stats(&request).unwrap();
//! assert_eq!(result.ranked.len(), 2);
//! assert_eq!(stats.executed_shards() + stats.skipped_shards(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
pub mod obs;
mod partition;
mod session;
mod stats;
mod transport;

pub use engine::{RebalanceReport, ShardedEngine, ShardedEngineBuilder, RECT_REFRESH_CHURN};
pub use partition::{Partitioning, ShardAssignment};
pub use session::{ShardedSession, ShardedStream};
pub use stats::{ShardOutcome, ShardStats};
pub use transport::{
    merge_ranked, scatter_sequential, scatter_speculative, shard_score_lower_bound, FailurePolicy,
    ScatterError, ScatterMode, SequentialScatter, ShardTransport, ThresholdCell,
};
