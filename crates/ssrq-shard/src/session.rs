//! Sharded sessions and cross-shard streaming.

use crate::engine::ShardedEngine;
use crate::stats::ShardStats;
use ssrq_core::{
    CoreError, QueryContext, QueryRequest, QueryResult, QueryStats, QueryStream, RankedUser,
};

/// A per-worker handle on a [`ShardedEngine`]: one reusable
/// [`QueryContext`] per shard, so a serving worker pays the `O(|V|)`
/// scratch allocation once per shard instead of per query — and the only
/// way to open a cross-shard [`ShardedStream`].
#[derive(Debug)]
pub struct ShardedSession<'e> {
    engine: &'e ShardedEngine,
    contexts: Vec<QueryContext>,
}

impl<'e> ShardedSession<'e> {
    pub(crate) fn new(engine: &'e ShardedEngine) -> Self {
        ShardedSession {
            contexts: (0..engine.shard_count())
                .map(|_| engine.make_context())
                .collect(),
            engine,
        }
    }

    /// The engine the session queries.
    pub fn engine(&self) -> &'e ShardedEngine {
        self.engine
    }

    /// Processes one request by scatter-gather, reusing this session's
    /// contexts (parallel across shards when more than one is worth
    /// visiting).
    pub fn run(&mut self, request: &QueryRequest) -> Result<QueryResult, CoreError> {
        self.run_with_stats(request).map(|(result, _)| result)
    }

    /// [`ShardedSession::run`] plus the coordinator's [`ShardStats`].
    pub fn run_with_stats(
        &mut self,
        request: &QueryRequest,
    ) -> Result<(QueryResult, ShardStats), CoreError> {
        self.engine.scatter(request, &mut self.contexts)
    }

    /// Processes one request as a **cross-shard pull-lazy stream**: every
    /// shard contributes its own [`QueryStream`] (pull-lazy within the
    /// shard — see [`QuerySession::stream`](ssrq_core::QuerySession::stream))
    /// and a k-way heap merge yields the globally smallest `(score, user)`
    /// head next.
    ///
    /// Each `next()` advances only the shard whose head was consumed (plus,
    /// on the first call, one head per shard — the minimum evidence an
    /// exact global order needs), so the first results arrive after a
    /// fraction of the full scatter work.  A fully drained stream yields
    /// exactly [`ShardedSession::run`]'s ranked entries in order.  Shards
    /// whose bounding rectangle cannot beat the request's score cutoff (or
    /// that miss its filter window) are skipped up front —
    /// [`ShardedStream::skipped_shards`] counts them.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedSession::run`] for everything detectable up front.
    /// An error a shard reports *mid-stream* (only deferred sub-queries
    /// can — see [`QueryStream::error`]) ends the merge early instead:
    /// `next()` returns `None` and [`ShardedStream::error`] holds the
    /// cause.
    pub fn stream(&mut self, request: &QueryRequest) -> Result<ShardedStream<'_>, CoreError> {
        let base = self.engine.prepare(request)?;
        let origin = base.origin();
        let initial_threshold = base.max_score().unwrap_or(f64::INFINITY);
        let mut arms = Vec::new();
        let mut skipped = 0usize;
        for (shard, ctx) in self.engine.shards.iter().zip(self.contexts.iter_mut()) {
            let lower_bound = self.engine.shard_lower_bound(shard, &base, origin);
            if lower_bound >= initial_threshold {
                skipped += 1;
                continue;
            }
            arms.push(Arm {
                stream: shard.engine.stream_with(&base, ctx)?,
                head: None,
                exhausted: false,
            });
        }
        Ok(ShardedStream {
            arms,
            remaining: base.k(),
            skipped,
            k: base.k(),
            failed: false,
        })
    }
}

/// One shard's contribution to a [`ShardedStream`]: its pull-lazy stream
/// plus the buffered head entry the merge compares.
#[derive(Debug)]
struct Arm<'s> {
    stream: QueryStream<'s>,
    head: Option<RankedUser>,
    exhausted: bool,
}

/// A pull-lazy cross-shard result stream; see [`ShardedSession::stream`].
#[derive(Debug)]
pub struct ShardedStream<'s> {
    arms: Vec<Arm<'s>>,
    remaining: usize,
    skipped: usize,
    k: usize,
    /// A shard stream failed mid-query: the merge stops (an exact global
    /// order can no longer be proven) and [`ShardedStream::error`] reports
    /// the cause.
    failed: bool,
}

impl ShardedStream<'_> {
    /// The `k` the query asked for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Shards pruned up front (empty, filter-disjoint, or provably unable
    /// to beat the request's score cutoff).
    pub fn skipped_shards(&self) -> usize {
        self.skipped
    }

    /// The error a shard stream reported mid-query, if any (see
    /// [`QueryStream::error`] for when that can happen — only deferred
    /// sub-queries, e.g. the cached method's fallback).  When set, the
    /// merge has stopped yielding: a missing shard's candidates would make
    /// any further "global minimum" claim wrong, so the stream ends
    /// instead of silently returning an incomplete answer.  The same
    /// request through [`ShardedSession::run`] returns the error directly.
    pub fn error(&self) -> Option<&CoreError> {
        self.arms.iter().find_map(|arm| arm.stream.error())
    }

    /// Work counters across the participating shard streams **so far**
    /// ([`QueryStats::merge`] semantics: work sums, runtime is the slowest
    /// shard) — for a truncated stream this shows what the early exit
    /// saved.
    pub fn stats(&self) -> QueryStats {
        let mut merged = QueryStats::default();
        for arm in &self.arms {
            merged.merge(&arm.stream.stats());
        }
        merged
    }
}

impl Iterator for ShardedStream<'_> {
    type Item = RankedUser;

    fn next(&mut self) -> Option<RankedUser> {
        if self.remaining == 0 || self.failed {
            return None;
        }
        // Refill: every arm needs a buffered head before an exact global
        // minimum can be taken.  Pulling a head is pull-lazy within the
        // shard — the shard search advances only until its next entry
        // finalizes.
        for arm in self.arms.iter_mut() {
            if arm.head.is_none() && !arm.exhausted {
                arm.head = arm.stream.next();
                arm.exhausted = arm.head.is_none();
            }
        }
        // A shard stream that *failed* (rather than drained) leaves a hole
        // in the candidate space: no entry can be proven globally minimal
        // any more.  Stop yielding; `error()` reports the cause.
        if self
            .arms
            .iter()
            .any(|arm| arm.exhausted && arm.stream.error().is_some())
        {
            self.failed = true;
            return None;
        }
        let best = self
            .arms
            .iter()
            .enumerate()
            .filter_map(|(i, arm)| arm.head.map(|h| (i, h)))
            .min_by(|(_, a), (_, b)| {
                a.score
                    .total_cmp(&b.score)
                    .then_with(|| a.user.cmp(&b.user))
            })
            .map(|(i, _)| i)?;
        let entry = self.arms[best].head.take();
        self.remaining -= 1;
        entry
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_core::{
        AlgorithmStrategy, GeoSocialDataset, GeoSocialEngine, QueryDriver, QueryStats, StepOutcome,
    };
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::Point;
    use std::sync::Arc;

    /// A driver that completes immediately but whose result is an error —
    /// the mid-stream failure shape only deferred sub-queries produce.
    struct FailingDriver;
    impl QueryDriver for FailingDriver {
        fn step(&mut self) -> StepOutcome {
            StepOutcome::Complete
        }
        fn drain_finalized(&mut self, _out: &mut Vec<RankedUser>) {}
        fn is_complete(&self) -> bool {
            true
        }
        fn stats(&self) -> QueryStats {
            QueryStats::default()
        }
        fn take_result(&mut self) -> Result<QueryResult, CoreError> {
            Err(CoreError::InvalidParameter("mid-stream failure".into()))
        }
    }

    struct FailingStrategy;
    impl AlgorithmStrategy for FailingStrategy {
        fn name(&self) -> &str {
            "FAIL-MIDSTREAM"
        }
        fn execute(
            &self,
            _engine: &GeoSocialEngine,
            _request: &QueryRequest,
            _ctx: &mut QueryContext,
        ) -> Result<QueryResult, CoreError> {
            Err(CoreError::InvalidParameter("mid-stream failure".into()))
        }
        fn begin_stream<'a>(
            &'a self,
            _engine: &'a GeoSocialEngine,
            _request: &QueryRequest,
            _ctx: &'a mut QueryContext,
        ) -> Result<Box<dyn QueryDriver + 'a>, CoreError> {
            Ok(Box::new(FailingDriver))
        }
    }

    #[test]
    fn a_mid_stream_shard_failure_ends_the_merge_and_is_reported() {
        let graph =
            GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let locations = (0..4)
            .map(|i| Some(Point::new(0.1 + 0.2 * i as f64, 0.5)))
            .collect();
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let mut engine = ShardedEngine::builder(dataset).shards(2).build().unwrap();
        engine.register_strategy(Arc::new(FailingStrategy));
        let request = QueryRequest::for_user(0)
            .k(3)
            .algorithm("FAIL-MIDSTREAM")
            .build()
            .unwrap();
        // The eager path fails outright...
        assert!(engine.run(&request).is_err());
        // ...and the streaming path must not silently yield a truncated
        // answer: it ends and reports the error.
        let mut session = engine.session();
        let mut stream = session.stream(&request).unwrap();
        assert!(stream.next().is_none());
        assert!(matches!(
            stream.error(),
            Some(CoreError::InvalidParameter(_))
        ));
    }
}
