//! Sharded sessions and cross-shard streaming.

use crate::engine::ShardedEngine;
use crate::stats::ShardStats;
use ssrq_core::{
    CoreError, QueryContext, QueryRequest, QueryResult, QueryStats, QueryStream, RankedUser,
};
use std::collections::VecDeque;

/// A per-worker handle on a [`ShardedEngine`]: one reusable
/// [`QueryContext`] per shard, so a serving worker pays the `O(|V|)`
/// scratch allocation once per shard instead of per query — and the only
/// way to open a cross-shard [`ShardedStream`].
#[derive(Debug)]
pub struct ShardedSession<'e> {
    engine: &'e ShardedEngine,
    contexts: Vec<QueryContext>,
}

impl<'e> ShardedSession<'e> {
    pub(crate) fn new(engine: &'e ShardedEngine) -> Self {
        ShardedSession {
            contexts: (0..engine.shard_count())
                .map(|_| engine.make_context())
                .collect(),
            engine,
        }
    }

    /// The engine the session queries.
    pub fn engine(&self) -> &'e ShardedEngine {
        self.engine
    }

    /// Processes one request by scatter-gather, reusing this session's
    /// contexts (parallel across shards when more than one is worth
    /// visiting).
    pub fn run(&mut self, request: &QueryRequest) -> Result<QueryResult, CoreError> {
        self.run_with_stats(request).map(|(result, _)| result)
    }

    /// [`ShardedSession::run`] plus the coordinator's [`ShardStats`].
    pub fn run_with_stats(
        &mut self,
        request: &QueryRequest,
    ) -> Result<(QueryResult, ShardStats), CoreError> {
        self.engine.scatter(request, &mut self.contexts)
    }

    /// Processes one request as a **cross-shard pull-lazy stream**: every
    /// participating shard contributes its own [`QueryStream`] (pull-lazy
    /// within the shard — see
    /// [`QuerySession::stream`](ssrq_core::QuerySession::stream)) and a
    /// k-way merge yields the globally smallest `(score, user)` head next.
    ///
    /// Shard arms are admitted **lazily**, in ascending order of their rect
    /// lower bound (`(1 − α) · mindist(origin, rect) / norm`): a shard's
    /// stream is not even *opened* until the merged head's score reaches
    /// that shard's bound — before that point the shard provably cannot
    /// contribute the next entry.  A `take(1)` consumer therefore typically
    /// touches only the shard(s) nearest the query origin;
    /// [`ShardedStream::opened_shards`] reports how many arms actually
    /// started.  Shards whose bound cannot beat the request's score cutoff
    /// (or that miss its filter window) are skipped outright —
    /// [`ShardedStream::skipped_shards`] counts them.
    ///
    /// Each `next()` then advances only the shard whose head was consumed,
    /// so the first results arrive after a fraction of the full scatter
    /// work.  A fully drained stream yields exactly
    /// [`ShardedSession::run`]'s ranked entries in order: an unopened arm
    /// only ever holds entries scoring at or above its bound, which is
    /// strictly above everything emitted while it stayed closed.
    ///
    /// # Errors
    ///
    /// Same as [`ShardedSession::run`] for everything detectable up front.
    /// An error a shard reports *mid-stream* — from a deferred sub-query
    /// (see [`QueryStream::error`]) or while opening a lazily admitted
    /// arm — ends the merge early instead: `next()` returns `None` and
    /// [`ShardedStream::error`] holds the cause.
    pub fn stream(&mut self, request: &QueryRequest) -> Result<ShardedStream<'_>, CoreError> {
        let base = self.engine.prepare(request)?;
        let origin = base.origin();
        let initial_threshold = base.max_score().unwrap_or(f64::INFINITY);
        let mut pending: Vec<PendingArm<'_>> = Vec::new();
        let mut skipped = 0usize;
        for (shard_idx, (shard, ctx)) in self
            .engine
            .shards
            .iter()
            .zip(self.contexts.iter_mut())
            .enumerate()
        {
            let lower_bound = self.engine.shard_lower_bound(shard, &base, origin);
            if lower_bound >= initial_threshold {
                skipped += 1;
                continue;
            }
            pending.push(PendingArm {
                shard: shard_idx,
                lower_bound,
                ctx,
            });
        }
        pending.sort_by(|a, b| {
            a.lower_bound
                .total_cmp(&b.lower_bound)
                .then_with(|| a.shard.cmp(&b.shard))
        });
        Ok(ShardedStream {
            engine: self.engine,
            remaining: base.k(),
            k: base.k(),
            base,
            pending: pending.into(),
            arms: Vec::new(),
            skipped,
            failed: false,
            open_error: None,
        })
    }
}

/// One shard's contribution to a [`ShardedStream`]: its pull-lazy stream
/// plus the buffered head entry the merge compares.
#[derive(Debug)]
struct Arm<'s> {
    stream: QueryStream<'s>,
    head: Option<RankedUser>,
    exhausted: bool,
}

/// A shard arm not yet admitted to the merge: its context is parked here
/// until the merged head's score reaches `lower_bound`.
#[derive(Debug)]
struct PendingArm<'s> {
    shard: usize,
    lower_bound: f64,
    ctx: &'s mut QueryContext,
}

/// A pull-lazy cross-shard result stream with lazy arm admission; see
/// [`ShardedSession::stream`].
#[derive(Debug)]
pub struct ShardedStream<'s> {
    engine: &'s ShardedEngine,
    /// The prepared (origin-resolved) broadcast request lazily admitted
    /// arms are opened with.
    base: QueryRequest,
    /// Unopened arms, ascending by lower bound.
    pending: VecDeque<PendingArm<'s>>,
    arms: Vec<Arm<'s>>,
    remaining: usize,
    skipped: usize,
    k: usize,
    /// A shard stream failed mid-query: the merge stops (an exact global
    /// order can no longer be proven) and [`ShardedStream::error`] reports
    /// the cause.
    failed: bool,
    /// An error raised while *opening* a lazily admitted arm.
    open_error: Option<CoreError>,
}

impl ShardedStream<'_> {
    /// The `k` the query asked for.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Shards pruned up front (empty, filter-disjoint, or provably unable
    /// to beat the request's score cutoff).
    pub fn skipped_shards(&self) -> usize {
        self.skipped
    }

    /// Shards whose pull-lazy stream has actually been opened so far.
    ///
    /// Admission is lazy (see [`ShardedSession::stream`]), so after a
    /// truncated consumption this is typically smaller than
    /// `shard_count() - skipped_shards()`: the difference is shards that
    /// did **no** work at all for this query.
    pub fn opened_shards(&self) -> usize {
        self.arms.len()
    }

    /// The error a shard stream reported mid-query, if any: a deferred
    /// sub-query failure (see [`QueryStream::error`] for when that can
    /// happen — e.g. the cached method's fallback) or a failure while
    /// opening a lazily admitted arm.  When set, the merge has stopped
    /// yielding: a missing shard's candidates would make any further
    /// "global minimum" claim wrong, so the stream ends instead of
    /// silently returning an incomplete answer.  The same request through
    /// [`ShardedSession::run`] returns the error directly.
    pub fn error(&self) -> Option<&CoreError> {
        self.open_error
            .as_ref()
            .or_else(|| self.arms.iter().find_map(|arm| arm.stream.error()))
    }

    /// Work counters across the shard streams opened **so far**
    /// ([`QueryStats::merge`] semantics: work sums, runtime is the slowest
    /// shard) — for a truncated stream this shows what the early exit and
    /// the lazy admission saved.
    pub fn stats(&self) -> QueryStats {
        let mut merged = QueryStats::default();
        for arm in &self.arms {
            merged.merge(&arm.stream.stats());
        }
        merged
    }

    /// Opens the next pending arm.  Returns `false` on failure (the stream
    /// flips to `failed` and records the error).
    fn open_next_pending(&mut self) -> bool {
        let Some(pending) = self.pending.pop_front() else {
            return true;
        };
        match self.engine.shards[pending.shard]
            .engine
            .stream_with(&self.base, pending.ctx)
        {
            Ok(stream) => {
                self.arms.push(Arm {
                    stream,
                    head: None,
                    exhausted: false,
                });
                true
            }
            Err(error) => {
                self.open_error = Some(error);
                self.failed = true;
                false
            }
        }
    }
}

impl Iterator for ShardedStream<'_> {
    type Item = RankedUser;

    fn next(&mut self) -> Option<RankedUser> {
        if self.remaining == 0 || self.failed {
            return None;
        }
        loop {
            // Refill: every open arm needs a buffered head before a global
            // minimum can be taken.  Pulling a head is pull-lazy within the
            // shard — the shard search advances only until its next entry
            // finalizes.
            for arm in self.arms.iter_mut() {
                if arm.head.is_none() && !arm.exhausted {
                    arm.head = arm.stream.next();
                    arm.exhausted = arm.head.is_none();
                }
            }
            // A shard stream that *failed* (rather than drained) leaves a
            // hole in the candidate space: no entry can be proven globally
            // minimal any more.  Stop yielding; `error()` reports the cause.
            if self
                .arms
                .iter()
                .any(|arm| arm.exhausted && arm.stream.error().is_some())
            {
                self.failed = true;
                return None;
            }
            let best = self
                .arms
                .iter()
                .enumerate()
                .filter_map(|(i, arm)| arm.head.map(|h| (i, h)))
                .min_by(|(_, a), (_, b)| {
                    a.score
                        .total_cmp(&b.score)
                        .then_with(|| a.user.cmp(&b.user))
                });
            // Lazy admission: the merged head is only provably the global
            // minimum while it scores strictly below every unopened arm's
            // lower bound (an unopened arm holds no entry below its bound).
            // Otherwise — or when nothing is open yet — open the nearest
            // pending arm and re-evaluate.
            let must_open = match (&best, self.pending.front()) {
                (_, None) => false,
                (None, Some(_)) => true,
                (Some((_, head)), Some(front)) => head.score >= front.lower_bound,
            };
            if must_open {
                if !self.open_next_pending() {
                    return None;
                }
                continue;
            }
            let (i, _) = best?;
            let entry = self.arms[i].head.take();
            self.remaining -= 1;
            return entry;
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_core::{
        AlgorithmStrategy, GeoSocialDataset, GeoSocialEngine, QueryDriver, QueryStats, StepOutcome,
    };
    use ssrq_graph::GraphBuilder;
    use ssrq_spatial::Point;
    use std::sync::Arc;

    /// A driver that completes immediately but whose result is an error —
    /// the mid-stream failure shape only deferred sub-queries produce.
    struct FailingDriver;
    impl QueryDriver for FailingDriver {
        fn step(&mut self) -> StepOutcome {
            StepOutcome::Complete
        }
        fn drain_finalized(&mut self, _out: &mut Vec<RankedUser>) {}
        fn is_complete(&self) -> bool {
            true
        }
        fn stats(&self) -> QueryStats {
            QueryStats::default()
        }
        fn take_result(&mut self) -> Result<QueryResult, CoreError> {
            Err(CoreError::InvalidParameter("mid-stream failure".into()))
        }
    }

    struct FailingStrategy;
    impl AlgorithmStrategy for FailingStrategy {
        fn name(&self) -> &str {
            "FAIL-MIDSTREAM"
        }
        fn execute(
            &self,
            _engine: &GeoSocialEngine,
            _request: &QueryRequest,
            _ctx: &mut QueryContext,
        ) -> Result<QueryResult, CoreError> {
            Err(CoreError::InvalidParameter("mid-stream failure".into()))
        }
        fn begin_stream<'a>(
            &'a self,
            _engine: &'a GeoSocialEngine,
            _request: &QueryRequest,
            _ctx: &'a mut QueryContext,
        ) -> Result<Box<dyn QueryDriver + 'a>, CoreError> {
            Ok(Box::new(FailingDriver))
        }
    }

    #[test]
    fn a_mid_stream_shard_failure_ends_the_merge_and_is_reported() {
        let graph =
            GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let locations = (0..4)
            .map(|i| Some(Point::new(0.1 + 0.2 * i as f64, 0.5)))
            .collect();
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        let mut engine = ShardedEngine::builder(dataset).shards(2).build().unwrap();
        engine.register_strategy(Arc::new(FailingStrategy));
        let request = QueryRequest::for_user(0)
            .k(3)
            .algorithm("FAIL-MIDSTREAM")
            .build()
            .unwrap();
        // The eager path fails outright...
        assert!(engine.run(&request).is_err());
        // ...and the streaming path must not silently yield a truncated
        // answer: it ends and reports the error.
        let mut session = engine.session();
        let mut stream = session.stream(&request).unwrap();
        assert!(stream.next().is_none());
        assert!(matches!(
            stream.error(),
            Some(CoreError::InvalidParameter(_))
        ));
    }
}
