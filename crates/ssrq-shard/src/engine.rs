//! The sharded scatter-gather engine.

use crate::partition::{Partitioning, ShardAssignment};
use crate::stats::{ShardOutcome, ShardStats};
use crate::transport::{self, shard_score_lower_bound, FailurePolicy, ShardTransport};
use ssrq_core::{
    AlgorithmStrategy, CoreError, EngineBuilder, GeoSocialDataset, GeoSocialEngine, QueryContext,
    QueryRequest, QueryResult, RankedUser, TopK, UserId,
};
use ssrq_spatial::{Point, Rect};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// One partition: a full [`GeoSocialEngine`] over the shared social graph
/// and this shard's resident locations, plus the conservative bounding
/// rectangle of those locations.
#[derive(Debug, Clone)]
pub(crate) struct Shard {
    pub(crate) engine: GeoSocialEngine,
    /// Bounding rectangle of the shard's resident locations — grown on
    /// every insert, never shrunk on removal (so it stays a sound
    /// lower-bound region without O(n) maintenance), re-tightened by
    /// [`ShardedEngine::rebalance`] and opportunistically after
    /// [`RECT_REFRESH_CHURN`] adopted relocations.
    pub(crate) rect: Option<Rect>,
    /// Relocations adopted since `rect` was last recomputed exactly —
    /// each one can only grow the rect, so churn measures how much
    /// rect-skip pruning power may have leaked away.
    pub(crate) churn: usize,
}

/// After how many adopted relocations a shard's bounding rectangle is
/// recomputed exactly ([`Rect::bounding`] over the actual residents)
/// instead of waiting for the next full rebalance.  Growth-only rect
/// maintenance is sound but monotonically degrades rect-skip pruning
/// under churn; this bounds the staleness at O(n) amortized over 64
/// updates.
pub const RECT_REFRESH_CHURN: usize = 64;

/// Fluent construction of a [`ShardedEngine`]; see
/// [`ShardedEngine::builder`].
pub struct ShardedEngineBuilder {
    dataset: GeoSocialDataset,
    shards: usize,
    partitioning: Partitioning,
    #[allow(clippy::type_complexity)]
    configure: Option<Box<dyn Fn(EngineBuilder) -> EngineBuilder + Send + Sync>>,
}

impl std::fmt::Debug for ShardedEngineBuilder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedEngineBuilder")
            .field("shards", &self.shards)
            .field("partitioning", &self.partitioning)
            .finish()
    }
}

impl ShardedEngineBuilder {
    /// Sets the number of shards (default 2).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Sets the partitioning policy (default
    /// [`Partitioning::SpatialGrid`] with 16 cells per axis).
    pub fn partitioning(mut self, policy: Partitioning) -> Self {
        self.partitioning = policy;
        self
    }

    /// Customizes every per-shard [`EngineBuilder`] (index parameters,
    /// lazy auxiliary indexes, …).  The closure runs once per shard.
    pub fn configure_engines(
        mut self,
        configure: impl Fn(EngineBuilder) -> EngineBuilder + Send + Sync + 'static,
    ) -> Self {
        self.configure = Some(Box::new(configure));
        self
    }

    /// Partitions the dataset and builds one engine per shard.
    ///
    /// Every shard sees the **full social graph** (social distances are
    /// global) but only its residents' locations; the bounding rectangle
    /// and both normalization constants are inherited from the
    /// unpartitioned dataset ([`GeoSocialDataset::restrict_locations`]), so
    /// per-shard scores are bit-identical to the single-engine scores and
    /// the coordinator's merge is exact.
    ///
    /// # Memory model
    ///
    /// The shard datasets share the unpartitioned dataset's `Arc`-backed
    /// immutable core — **one** graph instance backs every shard — and the
    /// graph-only indexes are built **once** and handed to every shard
    /// engine through `Arc` handles
    /// ([`EngineBuilder::share_graph_artifacts_with`]): one landmark set,
    /// one Contraction Hierarchies index (eager *or* lazy — a lazy CH is
    /// built by whichever shard first runs a `*-CH` query and observed by
    /// all), one social neighbour cache.  Only the per-shard location
    /// vector, SPA/TSA grid and AIS aggregate index are replicated, so
    /// memory and graph-index build time stay flat in the shard count.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for zero shards or a zero-resolution
    /// spatial tiling; otherwise whatever the per-shard
    /// [`EngineBuilder::build`] reports.
    pub fn build(self) -> Result<ShardedEngine, CoreError> {
        let n = self.shards;
        let assignment = ShardAssignment::compute(&self.dataset, self.partitioning, n)?;
        let owner = assignment.owners(&self.dataset);
        let mut shards: Vec<Shard> = Vec::with_capacity(n);
        for s in 0..n {
            let shard_dataset = self
                .dataset
                .restrict_locations(|u| owner[u as usize] as usize == s);
            let rect = Rect::bounding(shard_dataset.located_users().map(|(_, p)| p));
            let builder = GeoSocialEngine::builder(shard_dataset);
            let mut builder = match &self.configure {
                Some(configure) => configure(builder),
                None => builder,
            };
            // Graph-only artifacts (landmarks, CH, social cache) are pure
            // functions of the shared graph and the — identical per shard —
            // configuration: build them once on shard 0 and hand the same
            // `Arc`s to every later shard, including the lazy slots.
            if let Some(first) = shards.first() {
                builder = builder.share_graph_artifacts_with(&first.engine);
            }
            shards.push(Shard {
                engine: builder.build()?,
                rect,
                churn: 0,
            });
        }
        Ok(ShardedEngine {
            shards,
            owner,
            assignment,
        })
    }
}

/// What one [`ShardedEngine::rebalance`] pass did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceReport {
    /// Users migrated between shards.
    pub moved_users: usize,
    /// Located users per shard after the pass.
    pub occupancy: Vec<usize>,
}

/// A horizontally partitioned SSRQ serving engine.
///
/// `ShardedEngine` partitions a [`GeoSocialDataset`] across N
/// [`GeoSocialEngine`]s (see [`Partitioning`]) and answers any
/// [`QueryRequest`] by **scatter-gather**: the request — with the query
/// user's location resolved once and broadcast as the request
/// [`origin`](QueryRequest::origin) — fans out to the shards, each runs its
/// ordinary bounded top-k over its residents, and the coordinator merges
/// the per-shard results into an answer whose ranked list is identical to
/// the unpartitioned engine's for every algorithm.
///
/// The coordinator is *bounded*, not just correct:
///
/// * shards are visited in ascending order of their best possible score
///   (`(1 − α) · mindist(origin, shard rect) / norm`), and a shard whose
///   bound cannot beat the running threshold is **skipped** outright;
/// * once `k` results are gathered, the running `f_k` is forwarded to
///   later/lagging shards through the request's
///   [`max_score`](QueryRequest::max_score) admission cutoff, so their
///   searches terminate early exactly like a single engine whose interim
///   result is already that good.
///
/// **Exactness.**  Each shard's result is the exact top-k over its own
/// residents with globally normalized scores (the shard datasets inherit
/// the unpartitioned normalization constants), and every candidate a skip
/// or forwarded cutoff discards scores at least the interim `f_k` — which
/// never falls below the final `f_k`, so [`TopK`] would reject the
/// candidate at gather time anyway.  The merged list is therefore the
/// global top-k; on exact score ties at the `k`-boundary the merge keeps
/// the lexicographically smallest `(score, user)` entries (real-valued
/// scores make such ties measure-zero).
#[derive(Debug, Clone)]
pub struct ShardedEngine {
    pub(crate) shards: Vec<Shard>,
    /// Owning shard per user id.
    owner: Vec<u32>,
    assignment: ShardAssignment,
}

// Queries take `&self` (scatter state is per-call); all mutation goes
// through `&mut self` routing — same contract as `GeoSocialEngine`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ShardedEngine>();
};

/// Coordinator-side gather state shared by the scatter workers.
struct Gather {
    /// Running interim result; used **only** for the threshold `f_k` (the
    /// final ranked list is rebuilt deterministically from `entries`, so
    /// worker scheduling cannot reorder tie-breaks).
    topk: TopK,
    entries: Vec<RankedUser>,
    outcomes: Vec<Option<ShardOutcome>>,
    error: Option<CoreError>,
}

impl ShardedEngine {
    /// Starts fluent construction over `dataset`.
    pub fn builder(dataset: GeoSocialDataset) -> ShardedEngineBuilder {
        ShardedEngineBuilder {
            dataset,
            shards: 2,
            partitioning: Partitioning::default(),
            configure: None,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The partitioning policy in effect.
    pub fn partitioning(&self) -> Partitioning {
        self.assignment.policy()
    }

    /// The materialized user→shard assignment — what a multi-process
    /// deployment replicates to route updates and rebalances.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// The engine serving shard `s`.
    pub fn shard_engine(&self, s: usize) -> &GeoSocialEngine {
        &self.shards[s].engine
    }

    /// The conservative bounding rectangle of shard `s`'s resident
    /// locations (`None` for a shard without located residents).
    pub fn shard_rect(&self, s: usize) -> Option<Rect> {
        self.shards[s].rect
    }

    /// The shard currently owning `user`.
    pub fn owner_of(&self, user: UserId) -> Option<usize> {
        self.owner.get(user as usize).map(|&s| s as usize)
    }

    /// Total number of users (identical on every shard — all shards share
    /// one graph instance through the dataset core).
    pub fn user_count(&self) -> usize {
        self.owner.len()
    }

    /// The current location of `user`, resolved through the owning shard.
    pub fn location(&self, user: UserId) -> Option<Point> {
        let s = self.owner_of(user)?;
        self.shards[s].engine.dataset().location(user)
    }

    /// Located residents per shard (O(1) per shard, via the grid sizes).
    pub fn occupancy(&self) -> Vec<usize> {
        self.shards.iter().map(|s| s.engine.grid().len()).collect()
    }

    /// Registers a custom [`AlgorithmStrategy`] on **every** shard engine,
    /// so scatter-gather queries can request it by name like any built-in.
    pub fn register_strategy(&mut self, strategy: Arc<dyn AlgorithmStrategy>) {
        for shard in &mut self.shards {
            shard.engine.register_strategy(Arc::clone(&strategy));
        }
    }

    /// A [`ShardedSession`](crate::ShardedSession): per-worker handle with
    /// one reusable [`QueryContext`] per shard and cross-shard streaming.
    pub fn session(&self) -> crate::ShardedSession<'_> {
        crate::ShardedSession::new(self)
    }

    /// Processes one request by parallel scatter-gather; see the type-level
    /// docs for the coordinator's bounding and the exactness argument.
    ///
    /// # Errors
    ///
    /// Same classes as [`GeoSocialEngine::run`]; a per-shard failure fails
    /// the query.
    pub fn run(&self, request: &QueryRequest) -> Result<QueryResult, CoreError> {
        self.run_with_stats(request).map(|(result, _)| result)
    }

    /// [`ShardedEngine::run`] plus the coordinator's [`ShardStats`]
    /// (per-shard work, skip decisions, gather wall-clock).
    pub fn run_with_stats(
        &self,
        request: &QueryRequest,
    ) -> Result<(QueryResult, ShardStats), CoreError> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.run_with_stats_threads(request, threads)
    }

    /// [`ShardedEngine::run_with_stats`] with an explicit scatter width.
    ///
    /// `threads = 1` visits the shards *sequentially* in best-first order,
    /// which maximizes what the threshold forwarding and rect pruning can
    /// skip (each shard sees the `f_k` of everything gathered so far) —
    /// the mode the per-query workers of [`ShardedEngine::run_batch`] use,
    /// and the right mode for measuring skip rates.  Wider scatters trade
    /// pruning opportunity for per-query latency.
    pub fn run_with_stats_threads(
        &self,
        request: &QueryRequest,
        threads: usize,
    ) -> Result<(QueryResult, ShardStats), CoreError> {
        let threads = threads.clamp(1, self.shards.len());
        let mut contexts: Vec<QueryContext> = (0..threads).map(|_| self.make_context()).collect();
        self.scatter(request, &mut contexts)
    }

    /// A query context sized for the (shared) social graph; reusable
    /// across shards — the scratch resets per search.
    pub fn make_context(&self) -> QueryContext {
        QueryContext::with_capacity(self.user_count())
    }

    /// Processes a batch of requests in parallel across worker threads
    /// (queries are the unit of parallelism; each query visits its shards
    /// sequentially in best-first order, which maximizes the threshold
    /// pruning).  Results arrive in input order; per-element errors are
    /// reported in place.
    pub fn run_batch(&self, batch: &[QueryRequest]) -> Vec<Result<QueryResult, CoreError>> {
        let threads = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        self.run_batch_with_threads(batch, threads)
    }

    /// [`ShardedEngine::run_batch`] with an explicit worker count.
    pub fn run_batch_with_threads(
        &self,
        batch: &[QueryRequest],
        threads: usize,
    ) -> Vec<Result<QueryResult, CoreError>> {
        let threads = threads.min(batch.len());
        if threads <= 1 {
            let mut ctx = vec![self.make_context()];
            return batch
                .iter()
                .map(|request| self.scatter(request, &mut ctx).map(|(r, _)| r))
                .collect();
        }
        let next = AtomicUsize::new(0);
        let mut results: Vec<(usize, Result<QueryResult, CoreError>)> =
            Vec::with_capacity(batch.len());
        std::thread::scope(|scope| {
            let workers: Vec<_> = (0..threads)
                .map(|_| {
                    scope.spawn(|| {
                        let mut ctx = vec![self.make_context()];
                        let mut local = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(request) = batch.get(i) else { break };
                            local.push((i, self.scatter(request, &mut ctx).map(|(r, _)| r)));
                        }
                        local
                    })
                })
                .collect();
            for worker in workers {
                results.extend(worker.join().expect("sharded batch worker panicked"));
            }
        });
        results.sort_unstable_by_key(|&(i, _)| i);
        results.into_iter().map(|(_, result)| result).collect()
    }

    /// Routes a location report to the owning shard, migrating the user
    /// when the partitioning policy moves ownership with the location
    /// (spatial tiling: a move across a cell boundary changes shards; hash
    /// partitioning never migrates).
    pub fn update_location(&mut self, user: UserId, location: Point) -> Result<(), CoreError> {
        self.shards[0].engine.dataset().check_user(user)?;
        if !location.is_finite() {
            return Err(CoreError::InvalidParameter(format!(
                "non-finite location {location}"
            )));
        }
        let new_owner = self.assignment.owner_for(user, Some(location));
        let old_owner = self.owner[user as usize] as usize;
        if new_owner != old_owner {
            self.shards[old_owner].engine.remove_location(user)?;
            self.owner[user as usize] = new_owner as u32;
        }
        self.shards[new_owner]
            .engine
            .update_location(user, location)?;
        let shard = &mut self.shards[new_owner];
        shard.rect = Some(match shard.rect {
            Some(rect) => rect.including(location),
            None => Rect::new(location, location),
        });
        shard.churn += 1;
        if shard.churn >= RECT_REFRESH_CHURN {
            // Enough growth-only slack accumulated: recompute the exact
            // bounding rectangle so rect-skip pruning recovers without
            // waiting for a full rebalance.
            shard.rect = Rect::bounding(shard.engine.dataset().located_users().map(|(_, p)| p));
            shard.churn = 0;
        }
        Ok(())
    }

    /// Relocations shard `s` has adopted since its bounding rectangle was
    /// last recomputed exactly (see [`RECT_REFRESH_CHURN`]).
    pub fn rect_churn(&self, s: usize) -> usize {
        self.shards[s].churn
    }

    /// Routes a location removal to the owning shard (ownership is
    /// retained — an unlocated user is re-routed on their next report).
    pub fn remove_location(&mut self, user: UserId) -> Result<(), CoreError> {
        self.shards[0].engine.dataset().check_user(user)?;
        let owner = self.owner[user as usize] as usize;
        self.shards[owner].engine.remove_location(user)
    }

    /// Re-partitions for the **current** locations and tightens every
    /// shard's bounding rectangle.
    ///
    /// Under [`Partitioning::SpatialGrid`] the cells are re-packed
    /// (heaviest cell to the least-loaded shard) and users whose cell
    /// moved are migrated — the skew-repair pass for datasets whose
    /// population drifted since construction.  Under
    /// [`Partitioning::UserHash`] ownership is already stable and balanced,
    /// so only the rectangles are re-tightened (updates grow them
    /// conservatively and removals never shrink them).
    ///
    /// Re-partitioning moves **locations only**: the shared graph core and
    /// the `Arc`-held graph-only indexes (landmarks, CH, social cache) are
    /// never rebuilt or copied by a rebalance or a cross-shard migration —
    /// only the affected shards' grids and AIS indexes are updated.
    pub fn rebalance(&mut self) -> RebalanceReport {
        let located: Vec<(UserId, Point)> = self
            .shards
            .iter()
            .flat_map(|s| s.engine.dataset().located_users().collect::<Vec<_>>())
            .collect();
        let points: Vec<Point> = located.iter().map(|&(_, p)| p).collect();
        self.assignment.repack(&points);
        let mut moved_users = 0usize;
        for (user, p) in located {
            let new_owner = self.assignment.owner_for(user, Some(p));
            let old_owner = self.owner[user as usize] as usize;
            if new_owner != old_owner {
                self.shards[old_owner]
                    .engine
                    .remove_location(user)
                    .expect("migrating a resident user");
                self.shards[new_owner]
                    .engine
                    .update_location(user, p)
                    .expect("migrating a resident user");
                self.owner[user as usize] = new_owner as u32;
                moved_users += 1;
            }
        }
        for shard in &mut self.shards {
            shard.rect = Rect::bounding(shard.engine.dataset().located_users().map(|(_, p)| p));
            shard.churn = 0;
        }
        RebalanceReport {
            moved_users,
            occupancy: self.occupancy(),
        }
    }

    /// Lower bound on the score any admissible resident of `shard` can
    /// achieve: `(1 − α) · mindist(origin, rect) / norm` — `INFINITY` for
    /// an empty shard, an unlocated origin, or a bounding rectangle
    /// disjoint from the request's spatial filter window.
    pub(crate) fn shard_lower_bound(
        &self,
        shard: &Shard,
        request: &QueryRequest,
        origin: Option<Point>,
    ) -> f64 {
        let spatial_norm = self.shards[0].engine.dataset().spatial_norm();
        shard_score_lower_bound(shard.rect, request, origin, spatial_norm)
    }

    /// Validates the request against the sharded deployment and resolves
    /// the broadcast form: algorithm + index preflight (error parity with
    /// [`GeoSocialEngine::run`]) and the pinned query origin.
    pub(crate) fn prepare(&self, request: &QueryRequest) -> Result<QueryRequest, CoreError> {
        request.validate()?;
        let representative = &self.shards[0].engine;
        representative.dataset().check_user(request.user())?;
        let strategy = representative
            .strategies()
            .resolve(request.algorithm().key())?;
        let requires = strategy.requires();
        if requires.contraction_hierarchy {
            representative.require_contraction_hierarchy()?;
        }
        if requires.social_cache {
            representative.require_social_cache()?;
        }
        Ok(
            match request.origin().or_else(|| self.location(request.user())) {
                Some(origin) => request.clone().with_origin(origin),
                None => request.clone(),
            },
        )
    }

    /// The scatter-gather core: one worker per context, shards visited in
    /// ascending lower-bound order, threshold forwarded through the
    /// request cutoff, deterministic merge.
    ///
    /// With a single context the scatter routes through the transport
    /// layer's [`scatter_sequential`](crate::scatter_sequential) — the very
    /// loop a socket coordinator runs over remote shards — so the
    /// in-process and multi-process deployments share one visit order,
    /// threshold-forwarding rule and merge.
    pub(crate) fn scatter(
        &self,
        request: &QueryRequest,
        contexts: &mut [QueryContext],
    ) -> Result<(QueryResult, ShardStats), CoreError> {
        let started = Instant::now();
        let base = self.prepare(request)?;
        if contexts.len() <= 1 {
            let mut owned;
            let ctx: &mut QueryContext = match contexts {
                [] => {
                    owned = self.make_context();
                    &mut owned
                }
                [ctx, ..] => ctx,
            };
            let cell = RefCell::new(ctx);
            let mut transports: Vec<LocalShard<'_, '_>> = (0..self.shards.len())
                .map(|index| LocalShard {
                    engine: self,
                    index,
                    ctx: &cell,
                })
                .collect();
            // In-process shards fail the query on error — `Degrade` only
            // makes sense when a shard can fail independently (a process).
            let scatter =
                transport::scatter_sequential(&mut transports, &base, FailurePolicy::Fail)
                    .map_err(|e| e.error)?;
            let scatter_elapsed = started.elapsed();
            let merge_started = Instant::now();
            let ranked = transport::merge_ranked(scatter.entries, base.k());
            let merge_elapsed = merge_started.elapsed();
            let shard_stats = ShardStats::new(scatter.outcomes, started.elapsed());
            crate::obs::record_scatter(&shard_stats, scatter_elapsed, merge_elapsed);
            let result = QueryResult {
                ranked,
                k: base.k(),
                degraded: scatter.degraded,
                stats: shard_stats.merged,
            };
            return Ok((result, shard_stats));
        }
        let origin = base.origin();
        let n = self.shards.len();
        let bounds: Vec<f64> = self
            .shards
            .iter()
            .map(|s| self.shard_lower_bound(s, &base, origin))
            .collect();
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| bounds[a].total_cmp(&bounds[b]).then(a.cmp(&b)));

        let cursor = AtomicUsize::new(0);
        let gather = Mutex::new(Gather {
            topk: TopK::for_request(request),
            entries: Vec::new(),
            outcomes: vec![None; n],
            error: None,
        });

        let worker = |ctx: &mut QueryContext| loop {
            let slot = cursor.fetch_add(1, Ordering::Relaxed);
            let Some(&s) = order.get(slot) else { break };
            let threshold = {
                let g = gather.lock().expect("gather lock");
                if g.error.is_some() {
                    break;
                }
                g.topk.fk()
            };
            if bounds[s] >= threshold {
                let mut g = gather.lock().expect("gather lock");
                g.outcomes[s] = Some(ShardOutcome::Skipped {
                    lower_bound: bounds[s],
                });
                continue;
            }
            let shard_request = base.clone().with_max_score_at_most(threshold);
            match self.shards[s].engine.run_with(&shard_request, ctx) {
                Ok(result) => {
                    let mut g = gather.lock().expect("gather lock");
                    for &entry in &result.ranked {
                        g.topk.consider(entry);
                    }
                    g.outcomes[s] = Some(ShardOutcome::Executed(result.stats));
                    g.entries.extend(result.ranked);
                }
                Err(error) => {
                    let mut g = gather.lock().expect("gather lock");
                    if g.error.is_none() {
                        g.error = Some(error);
                    }
                    break;
                }
            }
        };

        std::thread::scope(|scope| {
            for ctx in contexts.iter_mut() {
                scope.spawn(|| worker(ctx));
            }
        });

        let gather = gather.into_inner().expect("gather lock");
        if let Some(error) = gather.error {
            return Err(error);
        }
        // Deterministic merge: the running `topk` above only steers the
        // pruning — rebuilding the list makes the answer independent of
        // worker scheduling.
        let scatter_elapsed = started.elapsed();
        let merge_started = Instant::now();
        let ranked = transport::merge_ranked(gather.entries, request.k());
        let merge_elapsed = merge_started.elapsed();
        let outcomes: Vec<ShardOutcome> = gather
            .outcomes
            .into_iter()
            .map(|o| o.expect("every shard has an outcome"))
            .collect();
        let shard_stats = ShardStats::new(outcomes, started.elapsed());
        crate::obs::record_scatter(&shard_stats, scatter_elapsed, merge_elapsed);
        let result = QueryResult {
            ranked,
            k: request.k(),
            degraded: false,
            stats: shard_stats.merged,
        };
        Ok((result, shard_stats))
    }
}

/// The in-process [`ShardTransport`]: one shard of a [`ShardedEngine`],
/// executing through a shared (single-threaded, hence `RefCell`) query
/// context.
struct LocalShard<'a, 'b> {
    engine: &'a ShardedEngine,
    index: usize,
    ctx: &'a RefCell<&'b mut QueryContext>,
}

impl ShardTransport for LocalShard<'_, '_> {
    type Error = CoreError;

    fn score_lower_bound(&self, request: &QueryRequest) -> f64 {
        self.engine
            .shard_lower_bound(&self.engine.shards[self.index], request, request.origin())
    }

    fn execute(&mut self, request: &QueryRequest) -> Result<QueryResult, CoreError> {
        let mut ctx = self.ctx.borrow_mut();
        self.engine.shards[self.index]
            .engine
            .run_with(request, &mut ctx)
    }

    fn describe(&self) -> String {
        format!("local shard {}", self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_core::GeoSocialDataset;
    use ssrq_graph::GraphBuilder;

    fn clustered_engine() -> ShardedEngine {
        let graph =
            GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        let locations = vec![
            Some(Point::new(0.10, 0.10)),
            Some(Point::new(0.20, 0.15)),
            Some(Point::new(0.30, 0.25)),
            Some(Point::new(0.15, 0.30)),
        ];
        let dataset = GeoSocialDataset::new(graph, locations).unwrap();
        ShardedEngine::builder(dataset)
            .shards(1)
            .partitioning(Partitioning::UserHash)
            .build()
            .unwrap()
    }

    #[test]
    fn relocation_churn_retightens_the_grown_rect() {
        let mut engine = clustered_engine();

        // One excursion far outside the cluster grows the rect (it must —
        // the bound stays admissible without a recompute) …
        engine.update_location(0, Point::new(0.95, 0.95)).unwrap();
        assert_eq!(engine.rect_churn(0), 1);
        let grown = engine.shard_rect(0).unwrap();
        assert!(grown.max.x >= 0.95 && grown.max.y >= 0.95);

        // … and the slack persists under growth-only maintenance until the
        // churn threshold forces an exact recompute.
        engine.update_location(0, Point::new(0.12, 0.12)).unwrap();
        for i in 0..RECT_REFRESH_CHURN {
            let wiggle = 0.10 + 0.001 * (i % 7) as f64;
            engine
                .update_location(1, Point::new(wiggle, wiggle))
                .unwrap();
        }
        assert!(
            engine.rect_churn(0) < RECT_REFRESH_CHURN,
            "the opportunistic refresh resets the churn counter"
        );
        let tightened = engine.shard_rect(0).unwrap();
        assert!(
            tightened.max.x < 0.5 && tightened.max.y < 0.5,
            "the refreshed rect {tightened:?} still carries relocation slack"
        );
    }

    #[test]
    fn rebalance_resets_the_churn_counter() {
        let mut engine = clustered_engine();
        engine.update_location(0, Point::new(0.9, 0.9)).unwrap();
        assert_eq!(engine.rect_churn(0), 1);
        engine.rebalance();
        assert_eq!(engine.rect_churn(0), 0);
        let rect = engine.shard_rect(0).unwrap();
        assert!(rect.max.x >= 0.9, "the resident at (0.9, 0.9) is covered");
    }
}
