//! Per-query scatter-gather accounting.

use ssrq_core::QueryStats;
use std::time::Duration;

/// What happened to one shard during a scatter-gather query.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardOutcome {
    /// The shard ran its bounded search; these are its work counters.
    Executed(QueryStats),
    /// The coordinator proved the shard could not contribute — its best
    /// possible score (`lower_bound`) was already at or above the running
    /// threshold (or its bounding rectangle missed the request's spatial
    /// filter) — and skipped it without running a search.
    Skipped {
        /// The score lower bound the skip decision was based on
        /// (`INFINITY` for an empty shard, a filter-disjoint shard, or an
        /// unlocated query origin).
        lower_bound: f64,
    },
    /// The shard failed mid-query and the coordinator degraded around it
    /// ([`FailurePolicy::Degrade`](crate::FailurePolicy::Degrade)) — its
    /// residents were **not** consulted and the merged result is flagged
    /// [`degraded`](ssrq_core::QueryResult::degraded).  Never produced
    /// in-process; only a remote transport can fail without failing the
    /// query.
    Failed {
        /// The failing shard's transport identity
        /// (e.g. `"unix:/tmp/ssrq-2.sock"`).
        shard: String,
        /// The failure the coordinator observed.
        detail: String,
    },
}

/// Coordinator-side statistics of one scatter-gather query: the per-shard
/// outcomes plus the aggregate built with [`QueryStats::merge`] (work
/// counters sum across shards; `runtime` is the slowest shard, since the
/// searches overlap on the wall clock).
#[derive(Debug, Clone, PartialEq)]
pub struct ShardStats {
    /// One outcome per shard, indexed by shard id.
    pub per_shard: Vec<ShardOutcome>,
    /// The [`QueryStats::merge`] aggregate over every executed shard.
    pub merged: QueryStats,
    /// Wall-clock time of the whole scatter-gather (including the merge),
    /// as observed by the coordinator.
    pub gather_runtime: Duration,
}

impl ShardStats {
    /// Builds the aggregate record from per-shard outcomes.
    pub fn new(per_shard: Vec<ShardOutcome>, gather_runtime: Duration) -> Self {
        let mut merged = QueryStats::default();
        for outcome in &per_shard {
            if let ShardOutcome::Executed(stats) = outcome {
                merged.merge(stats);
            }
        }
        ShardStats {
            per_shard,
            merged,
            gather_runtime,
        }
    }

    /// Number of shards that ran their search.
    pub fn executed_shards(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|o| matches!(o, ShardOutcome::Executed(_)))
            .count()
    }

    /// Number of shards the threshold / bounding-rectangle pruning skipped.
    pub fn skipped_shards(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|o| matches!(o, ShardOutcome::Skipped { .. }))
            .count()
    }

    /// Number of shards that failed mid-query (degraded gathers only).
    pub fn failed_shards(&self) -> usize {
        self.per_shard
            .iter()
            .filter(|o| matches!(o, ShardOutcome::Failed { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_stats_aggregate_executed_outcomes_only() {
        let executed = |pops: usize, ms: u64| {
            ShardOutcome::Executed(QueryStats {
                vertex_pops: pops,
                runtime: Duration::from_millis(ms),
                ..QueryStats::default()
            })
        };
        let stats = ShardStats::new(
            vec![
                executed(5, 10),
                ShardOutcome::Skipped { lower_bound: 0.9 },
                executed(7, 3),
                ShardOutcome::Failed {
                    shard: "unix:/tmp/ssrq-3.sock".into(),
                    detail: "connection reset".into(),
                },
            ],
            Duration::from_millis(12),
        );
        assert_eq!(stats.executed_shards(), 2);
        assert_eq!(stats.skipped_shards(), 1);
        assert_eq!(stats.failed_shards(), 1);
        assert_eq!(stats.merged.vertex_pops, 12);
        // merge semantics: parallel shards overlap, slowest one counts.
        assert_eq!(stats.merged.runtime, Duration::from_millis(10));
        assert_eq!(stats.gather_runtime, Duration::from_millis(12));
    }
}
