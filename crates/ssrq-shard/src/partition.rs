//! Partitioning policies: how users are assigned to shards.
//!
//! A [`Partitioning`] decides, for every user, which shard *owns* their
//! location (the full social graph is replicated to every shard — social
//! distances are global, locations are not).  Two policies are provided:
//!
//! * [`Partitioning::UserHash`] — a stable multiplicative hash of the user
//!   id.  Occupancy is balanced by construction and a user never migrates
//!   on a location update, but queries gain no spatial locality: every
//!   shard's bounding rectangle covers the whole domain, so the
//!   coordinator's rect pruning rarely skips a shard.
//! * [`Partitioning::SpatialGrid`] — the domain is tiled into
//!   `cells_per_axis²` grid cells and whole cells are packed onto shards
//!   (greedily, heaviest cell to the least-loaded shard).  Shards get
//!   compact bounding rectangles, which is what lets the coordinator skip
//!   shards whose best possible spatial score cannot beat the current
//!   threshold — at the price of user *migration* when a location update
//!   crosses a cell boundary, and of occupancy skew as users drift
//!   (see [`ShardedEngine::rebalance`](crate::ShardedEngine::rebalance)).
//!
//! Users without a location fall back to the hash assignment under either
//! policy (they occupy no spatial index and never appear in results until
//! they report a location, at which point they are routed like any update).

use ssrq_core::{CoreError, GeoSocialDataset, UserId};
use ssrq_spatial::{Point, Rect};

/// How a [`ShardedEngine`](crate::ShardedEngine) assigns users to shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partitioning {
    /// Stable hash of the user id — balanced, migration-free, no spatial
    /// locality.
    UserHash,
    /// Tile the location domain into `cells_per_axis × cells_per_axis`
    /// cells and pack whole cells onto shards — spatially compact shards
    /// whose bounding rectangles enable coordinator-side pruning.
    SpatialGrid {
        /// Tiling resolution per axis (must be at least 1; a multiple of
        /// the shard count gives the packer room to balance).
        cells_per_axis: u32,
    },
}

impl Default for Partitioning {
    fn default() -> Self {
        Partitioning::SpatialGrid { cells_per_axis: 16 }
    }
}

/// Stable shard hash (Fibonacci multiplicative hashing): deterministic
/// across runs and platforms, uniform enough for id-dense user sets.
#[inline]
pub(crate) fn hash_shard(user: UserId, shards: usize) -> usize {
    let h = (user as u64 ^ 0x5353_5251).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    ((h >> 32) as usize) % shards
}

/// The materialized assignment state of a sharded engine.
#[derive(Debug, Clone)]
pub(crate) enum AssignmentState {
    /// Hash partitioning needs no state beyond the shard count.
    Hash,
    /// Spatial tiling: the domain rectangle, the resolution, and the shard
    /// each cell is packed onto.
    Spatial {
        bounds: Rect,
        cells_per_axis: u32,
        cell_to_shard: Vec<u32>,
    },
}

impl AssignmentState {
    /// The cell index of a location (clamped into the tiling bounds, like
    /// the engine-side grids clamp drifting points).
    pub(crate) fn cell_of(bounds: Rect, cells_per_axis: u32, p: Point) -> usize {
        let side = cells_per_axis as f64;
        let fx = ((p.x - bounds.min.x) / bounds.width().max(f64::MIN_POSITIVE)) * side;
        let fy = ((p.y - bounds.min.y) / bounds.height().max(f64::MIN_POSITIVE)) * side;
        let cx = (fx as i64).clamp(0, cells_per_axis as i64 - 1) as usize;
        let cy = (fy as i64).clamp(0, cells_per_axis as i64 - 1) as usize;
        cy * cells_per_axis as usize + cx
    }

    /// The shard that owns a user currently at `location` (or without one).
    pub(crate) fn owner_for(&self, user: UserId, location: Option<Point>, shards: usize) -> usize {
        match (self, location) {
            (
                AssignmentState::Spatial {
                    bounds,
                    cells_per_axis,
                    cell_to_shard,
                },
                Some(p),
            ) => cell_to_shard[Self::cell_of(*bounds, *cells_per_axis, p)] as usize,
            _ => hash_shard(user, shards),
        }
    }
}

/// The materialized user→shard assignment of a sharded deployment.
///
/// This is the routing brain shared by every coordinator flavour: the
/// in-process [`ShardedEngine`](crate::ShardedEngine) embeds one, a
/// `shard-server` process computes an identical one from the same dataset
/// and policy (the computation is deterministic), and a socket coordinator
/// ships repacked cell maps to its servers through
/// [`ShardAssignment::cell_map`] / [`ShardAssignment::set_cell_map`].
#[derive(Debug, Clone)]
pub struct ShardAssignment {
    shards: usize,
    policy: Partitioning,
    state: AssignmentState,
}

impl ShardAssignment {
    /// Materializes the assignment for `dataset` under `policy`.
    ///
    /// Deterministic: every party that computes the assignment from the
    /// same dataset, policy and shard count gets byte-identical routing.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] for zero shards or a zero-resolution
    /// spatial tiling.
    pub fn compute(
        dataset: &GeoSocialDataset,
        policy: Partitioning,
        shards: usize,
    ) -> Result<Self, CoreError> {
        if shards == 0 {
            return Err(CoreError::InvalidParameter(
                "a sharded engine needs at least one shard".into(),
            ));
        }
        let state = match policy {
            Partitioning::UserHash => AssignmentState::Hash,
            Partitioning::SpatialGrid { cells_per_axis } => {
                if cells_per_axis == 0 {
                    return Err(CoreError::InvalidParameter(
                        "spatial partitioning needs at least one cell per axis".into(),
                    ));
                }
                let bounds = dataset.bounds();
                let mut loads = vec![0usize; (cells_per_axis as usize).pow(2)];
                for (_, p) in dataset.located_users() {
                    loads[AssignmentState::cell_of(bounds, cells_per_axis, p)] += 1;
                }
                AssignmentState::Spatial {
                    bounds,
                    cells_per_axis,
                    cell_to_shard: pack_cells(&loads, cells_per_axis, shards),
                }
            }
        };
        Ok(ShardAssignment {
            shards,
            policy,
            state,
        })
    }

    /// Number of shards the assignment routes onto.
    pub fn shard_count(&self) -> usize {
        self.shards
    }

    /// The partitioning policy the assignment was materialized from.
    pub fn policy(&self) -> Partitioning {
        self.policy
    }

    /// The shard owning a user currently at `location` (or without one).
    pub fn owner_for(&self, user: UserId, location: Option<Point>) -> usize {
        self.state.owner_for(user, location, self.shards)
    }

    /// The owning shard of every user of `dataset`, indexed by user id.
    pub fn owners(&self, dataset: &GeoSocialDataset) -> Vec<u32> {
        (0..dataset.user_count() as UserId)
            .map(|u| self.owner_for(u, dataset.location(u)) as u32)
            .collect()
    }

    /// The tiling bounds (`None` under hash partitioning).
    pub fn bounds(&self) -> Option<Rect> {
        match &self.state {
            AssignmentState::Spatial { bounds, .. } => Some(*bounds),
            AssignmentState::Hash => None,
        }
    }

    /// The tiling resolution per axis (`None` under hash partitioning).
    pub fn cells_per_axis(&self) -> Option<u32> {
        match &self.state {
            AssignmentState::Spatial { cells_per_axis, .. } => Some(*cells_per_axis),
            AssignmentState::Hash => None,
        }
    }

    /// The cell→shard map (`None` under hash partitioning) — what a
    /// rebalancing coordinator ships to its shard servers.
    pub fn cell_map(&self) -> Option<&[u32]> {
        match &self.state {
            AssignmentState::Spatial { cell_to_shard, .. } => Some(cell_to_shard),
            AssignmentState::Hash => None,
        }
    }

    /// Installs a cell→shard map received from a coordinator.
    ///
    /// # Errors
    ///
    /// [`CoreError::InvalidParameter`] under hash partitioning, for a map
    /// of the wrong length, or one naming a shard out of range.
    pub fn set_cell_map(&mut self, map: Vec<u32>) -> Result<(), CoreError> {
        let shards = self.shards;
        match &mut self.state {
            AssignmentState::Spatial {
                cells_per_axis,
                cell_to_shard,
                ..
            } => {
                let expected = (*cells_per_axis as usize).pow(2);
                if map.len() != expected {
                    return Err(CoreError::InvalidParameter(format!(
                        "cell map has {} entries, tiling has {expected} cells",
                        map.len()
                    )));
                }
                if let Some(&bad) = map.iter().find(|&&s| s as usize >= shards) {
                    return Err(CoreError::InvalidParameter(format!(
                        "cell map names shard {bad} of {shards}"
                    )));
                }
                *cell_to_shard = map;
                Ok(())
            }
            AssignmentState::Hash => Err(CoreError::InvalidParameter(
                "hash partitioning has no cell map".into(),
            )),
        }
    }

    /// Re-packs the spatial cells for the given located population
    /// (heaviest-band serpentine packing, see the module docs).  A no-op
    /// under hash partitioning, whose assignment is location-independent.
    pub fn repack(&mut self, located: &[Point]) {
        let shards = self.shards;
        if let AssignmentState::Spatial {
            bounds,
            cells_per_axis,
            cell_to_shard,
        } = &mut self.state
        {
            let mut loads = vec![0usize; (*cells_per_axis as usize).pow(2)];
            for &p in located {
                loads[AssignmentState::cell_of(*bounds, *cells_per_axis, p)] += 1;
            }
            *cell_to_shard = pack_cells(&loads, *cells_per_axis, shards);
        }
    }
}

/// Packs cells onto shards as **contiguous runs of a serpentine
/// (boustrophedon) cell walk**, each run carrying roughly `total / shards`
/// of the load.
///
/// Contiguity is the point: consecutive serpentine cells are spatially
/// adjacent, so every shard ends up a compact band of the domain with a
/// small bounding rectangle — which is what gives the coordinator's
/// `mindist(origin, rect)` pruning its teeth.  (A balance-only packer,
/// e.g. heaviest-cell-to-least-loaded, interleaves cells from all over the
/// domain and every shard rectangle degenerates to the full bounds.)
/// Balance is within one cell's load of even, deterministic.
pub(crate) fn pack_cells(cell_loads: &[usize], cells_per_axis: u32, shards: usize) -> Vec<u32> {
    let side = cells_per_axis as usize;
    debug_assert_eq!(cell_loads.len(), side * side);
    let total: usize = cell_loads.iter().sum();
    let mut cell_to_shard = vec![0u32; cell_loads.len()];
    let mut shard = 0usize;
    let mut assigned_load = 0usize; // load placed on shards 0..shard
    let mut current_load = 0usize; // load placed on `shard` so far
    for cy in 0..side {
        // Serpentine: even rows left-to-right, odd rows right-to-left, so
        // the walk never jumps across the domain.
        let columns: Box<dyn Iterator<Item = usize>> = if cy % 2 == 0 {
            Box::new(0..side)
        } else {
            Box::new((0..side).rev())
        };
        for cx in columns {
            let c = cy * side + cx;
            // Advance to the next shard when the current one reached its
            // fair share of what remains (never past the last shard).
            if shard + 1 < shards && current_load > 0 {
                let remaining_shards = shards - shard;
                let target = (total - assigned_load).div_ceil(remaining_shards);
                if current_load >= target {
                    assigned_load += current_load;
                    current_load = 0;
                    shard += 1;
                }
            }
            cell_to_shard[c] = shard as u32;
            current_load += cell_loads[c];
        }
    }
    cell_to_shard
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_shard_is_stable_and_in_range() {
        for user in 0..1000u32 {
            let s = hash_shard(user, 7);
            assert!(s < 7);
            assert_eq!(s, hash_shard(user, 7));
        }
        // Roughly uniform: no shard is starved on a dense id range.
        let mut counts = [0usize; 4];
        for user in 0..4000u32 {
            counts[hash_shard(user, 4)] += 1;
        }
        for &c in &counts {
            assert!(c > 500, "skewed hash distribution: {counts:?}");
        }
    }

    #[test]
    fn cell_of_clamps_out_of_bounds_points() {
        let bounds = Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0));
        assert_eq!(AssignmentState::cell_of(bounds, 4, Point::new(0.1, 0.1)), 0);
        assert_eq!(
            AssignmentState::cell_of(bounds, 4, Point::new(0.9, 0.9)),
            15
        );
        // Points outside the tiling land in the nearest boundary cell.
        assert_eq!(
            AssignmentState::cell_of(bounds, 4, Point::new(-5.0, -5.0)),
            0
        );
        assert_eq!(
            AssignmentState::cell_of(bounds, 4, Point::new(9.0, 9.0)),
            15
        );
    }

    #[test]
    fn pack_cells_balances_loads() {
        // A 4x4 tiling with one heavy cell; two shards.
        let mut loads = vec![1usize; 16];
        loads[0] = 10;
        let assignment = pack_cells(&loads, 4, 2);
        let mut per_shard = [0usize; 2];
        for (c, &s) in assignment.iter().enumerate() {
            per_shard[s as usize] += loads[c];
        }
        // Balance within one cell's weight of even.
        let diff = per_shard[0].abs_diff(per_shard[1]);
        assert!(diff <= 10, "loads {per_shard:?}");
        assert!(per_shard[0] > 0 && per_shard[1] > 0);
        // Deterministic.
        assert_eq!(assignment, pack_cells(&loads, 4, 2));
    }

    #[test]
    fn pack_cells_keeps_shards_contiguous_bands() {
        // Uniform load: each shard must be a contiguous run of the
        // serpentine walk (spatially compact bands), never interleaved.
        let loads = vec![1usize; 64];
        let assignment = pack_cells(&loads, 8, 4);
        let mut walk = Vec::new();
        for cy in 0..8usize {
            let cols: Vec<usize> = if cy % 2 == 0 {
                (0..8).collect()
            } else {
                (0..8).rev().collect()
            };
            for cx in cols {
                walk.push(assignment[cy * 8 + cx]);
            }
        }
        // Along the walk the shard id is non-decreasing.
        assert!(walk.windows(2).all(|w| w[0] <= w[1]), "{walk:?}");
        // All shards are used and each holds 16 cells.
        for s in 0..4u32 {
            assert_eq!(walk.iter().filter(|&&x| x == s).count(), 16);
        }
    }
}
