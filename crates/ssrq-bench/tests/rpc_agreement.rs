//! Distributed agreement: real `shard-server` OS processes behind a
//! [`RemoteShardedEngine`] must return exactly what the in-process
//! [`ShardedEngine`] returns for the full 12-algorithm × request-shape
//! matrix, demonstrably forward the running `f_k` threshold across the
//! wire, and honour the [`FailurePolicy`] when a process is killed
//! mid-batch.
//!
//! Both deployments regenerate the same deterministic dataset from the
//! same `--users/--seed`, so the comparison needs no data shipping.

use ssrq_bench::{launch_cluster, DeploymentConfig, ShardProcess};
use ssrq_core::{Algorithm, QueryRequest};
use ssrq_data::QueryWorkload;
use ssrq_net::{Endpoint, NetError, RemoteShardedEngine};
use ssrq_shard::{FailurePolicy, Partitioning, ScatterMode, ShardOutcome};
use ssrq_spatial::{Point, Rect};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

fn server_binary() -> &'static Path {
    Path::new(env!("CARGO_BIN_EXE_shard-server"))
}

static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

/// A fresh socket directory per test (cleaned up by the guard).
struct SocketDir(PathBuf);

impl SocketDir {
    fn new() -> SocketDir {
        SocketDir(std::env::temp_dir().join(format!(
            "ssrq-rpc-test-{}-{}",
            std::process::id(),
            DIR_SEQ.fetch_add(1, Ordering::SeqCst)
        )))
    }
}

impl Drop for SocketDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn connect(servers: &[ShardProcess]) -> RemoteShardedEngine {
    RemoteShardedEngine::builder(servers.iter().map(|s| s.endpoint.clone()).collect())
        .connect()
        .expect("coordinator connects")
}

/// The request shapes of the agreement matrix.
fn request_shapes(user: u32, algorithm: Algorithm) -> Vec<(&'static str, QueryRequest)> {
    let base = QueryRequest::for_user(user).k(10).alpha(0.4);
    vec![
        ("plain", base.clone().algorithm(algorithm).build().unwrap()),
        (
            "rect",
            base.clone()
                .algorithm(algorithm)
                .within(Rect::new(Point::new(0.05, 0.05), Point::new(0.8, 0.9)))
                .build()
                .unwrap(),
        ),
        (
            "exclusion",
            base.clone()
                .algorithm(algorithm)
                .exclude((0..200u32).filter(|u| u % 3 == 0))
                .build()
                .unwrap(),
        ),
        (
            "max_score",
            base.algorithm(algorithm).max_score(0.5).build().unwrap(),
        ),
    ]
}

#[test]
fn shard_server_processes_agree_with_the_in_process_engine_for_all_algorithms() {
    // Small dataset: every process builds its own (lazy, quadratic-ish)
    // Contraction Hierarchies index over the replicated graph for the
    // *-CH rows of the matrix.
    let mut config =
        DeploymentConfig::new(180, 77, 3, Partitioning::SpatialGrid { cells_per_axis: 4 });
    config.with_ch = true;
    config.cache_workload = Some((3, 23, 80));

    let local = config.in_process_engine();
    let dir = SocketDir::new();
    let servers = launch_cluster(server_binary(), &dir.0, &config).expect("cluster launches");
    let mut remote = connect(&servers);
    assert_eq!(remote.shard_count(), 3);
    assert_eq!(remote.user_count(), config.users as u64);

    let workload = QueryWorkload::generate(&config.dataset(), 3, 23);
    for &user in &workload.users {
        for algorithm in Algorithm::ALL {
            for (shape, request) in request_shapes(user, algorithm) {
                let expected = local.run(&request).expect("in-process query");
                let got = remote.query(&request).expect("remote query");
                assert!(
                    !got.degraded,
                    "{} {shape}: unexpectedly degraded",
                    algorithm.name()
                );
                if algorithm.needs_ch() || algorithm.needs_social_cache() {
                    // These strategies mix two exact distance mechanisms
                    // whose floating-point summation order is interleaving-
                    // dependent; scores can differ by an ulp.
                    assert!(
                        got.same_users_and_scores(&expected, 1e-9),
                        "{} {shape} (user {user}) differs:\n  got      {:?}\n  expected {:?}",
                        algorithm.name(),
                        got.users(),
                        expected.users()
                    );
                } else {
                    assert_eq!(
                        got.ranked,
                        expected.ranked,
                        "{} {shape} (user {user}) differs from the in-process engine",
                        algorithm.name()
                    );
                }
                // The answer crossed the wire.
                assert!(
                    got.stats.wire_round_trips >= 1,
                    "{} {shape}",
                    algorithm.name()
                );
                assert!(got.stats.bytes_sent > 0 && got.stats.bytes_received > 0);
                // The in-process twin never touches a socket.
                assert_eq!(expected.stats.wire_round_trips, 0);
                assert_eq!(expected.stats.bytes_sent + expected.stats.bytes_received, 0);
            }
        }
    }
    remote.shutdown().expect("servers acknowledge shutdown");
}

#[test]
fn the_forwarded_threshold_saves_remote_work() {
    let config = DeploymentConfig::new(
        900,
        4242,
        4,
        Partitioning::SpatialGrid { cells_per_axis: 16 },
    );
    let dir = SocketDir::new();
    let servers = launch_cluster(server_binary(), &dir.0, &config).expect("cluster launches");
    let endpoints: Vec<_> = servers.iter().map(|s| s.endpoint.clone()).collect();
    let mut forwarding = RemoteShardedEngine::builder(endpoints.clone())
        .connect()
        .expect("forwarding coordinator connects");
    let unbounded = RemoteShardedEngine::builder(endpoints)
        .forward_threshold(false)
        .connect()
        .expect("measurement coordinator connects");

    let workload = QueryWorkload::generate(&config.dataset(), 6, 31);
    let mut with_threshold = 0usize;
    let mut without_threshold = 0usize;
    for &user in &workload.users {
        let request = QueryRequest::for_user(user)
            .k(5)
            .alpha(0.3)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let a = forwarding.query(&request).expect("forwarding query");
        let b = unbounded.query(&request).expect("measurement query");
        // Same answer either way — the threshold is an optimization.
        assert!(a.same_users_and_scores(&b, 0.0), "user {user} diverged");
        with_threshold += a.stats.relaxed_edges + a.stats.evaluated_users;
        without_threshold += b.stats.relaxed_edges + b.stats.evaluated_users;
    }
    assert!(
        with_threshold < without_threshold,
        "forwarding the f_k across the wire must strictly reduce remote work \
         ({with_threshold} vs {without_threshold} relaxed+evaluated)"
    );
    forwarding.shutdown().expect("shutdown");
}

#[test]
fn killing_a_shard_process_fails_or_degrades_per_policy() {
    let config = DeploymentConfig::new(400, 9, 3, Partitioning::UserHash);
    let local = config.in_process_engine();
    let dir = SocketDir::new();
    let mut servers = launch_cluster(server_binary(), &dir.0, &config).expect("cluster launches");
    let mut remote = connect(&servers);

    // A pinned origin keeps the origin lookup off the wire, and k far
    // above the population guarantees every shard (hash partitioning:
    // uninformative rects) must be visited.
    let request = QueryRequest::for_user(1)
        .k(100)
        .alpha(0.4)
        .origin(Point::new(0.5, 0.5))
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    remote.query(&request).expect("all shards up");

    let killed_endpoint = servers[1].endpoint.to_string();
    servers[1].kill();

    // Fail (the default): the dead process is a typed transport error.
    let error = remote
        .query(&request)
        .expect_err("a dead shard must fail the query");
    assert!(
        matches!(
            error,
            NetError::Disconnected { .. } | NetError::Io(_) | NetError::Timeout { .. }
        ),
        "unexpected error for a killed process: {error}"
    );

    // Degrade: the survivors answer, flagged, with the dead shard named.
    remote.set_failure_policy(FailurePolicy::Degrade);
    let (result, stats) = remote
        .query_detailed(&request)
        .expect("degrade mode answers");
    assert!(result.degraded);
    assert!(!result.is_complete());
    assert_eq!(stats.failed_shards(), 1);
    assert!(
        stats.per_shard.iter().any(|outcome| matches!(
            outcome,
            ShardOutcome::Failed { shard, .. } if *shard == killed_endpoint
        )),
        "the failed outcome must name the dead shard's endpoint"
    );
    // The degraded answer is the exact merge over the surviving shards:
    // no user owned by the dead shard appears, and every user it shares
    // with the full answer carries the identical score.  (It is *not* a
    // subset of the full top-k — the dead shard's users displaced others.)
    let full = local.run(&request).expect("in-process query");
    for entry in &result.ranked {
        assert_ne!(
            local.owner_of(entry.user),
            Some(1),
            "user {} of the dead shard leaked into the degraded answer",
            entry.user
        );
        if let Some(matching) = full.ranked.iter().find(|e| e.user == entry.user) {
            assert_eq!(matching, entry, "score of user {} diverged", entry.user);
        }
    }
    // The speculative scatter honours the same policies against the same
    // dead process — over the already-established connections.
    remote.set_scatter_mode(ScatterMode::Speculative);
    remote.set_failure_policy(FailurePolicy::Fail);
    let error = remote
        .query(&request)
        .expect_err("speculative Fail surfaces the dead shard");
    assert!(
        matches!(
            error,
            NetError::Disconnected { .. } | NetError::Io(_) | NetError::Timeout { .. }
        ),
        "unexpected speculative error for a killed process: {error}"
    );
    remote.set_failure_policy(FailurePolicy::Degrade);
    let (result, stats) = remote
        .query_detailed(&request)
        .expect("speculative degrade mode answers");
    assert!(result.degraded);
    assert_eq!(stats.failed_shards(), 1);
    assert!(stats.per_shard.iter().any(|outcome| matches!(
        outcome,
        ShardOutcome::Failed { shard, .. } if *shard == killed_endpoint
    )));
    for entry in &result.ranked {
        assert_ne!(local.owner_of(entry.user), Some(1));
    }

    remote
        .shutdown()
        .expect_err("one shard is dead, shutdown reports it");
}

#[test]
fn a_hard_killed_server_restarts_on_the_same_socket_path() {
    let config = DeploymentConfig::new(200, 5, 2, Partitioning::UserHash);
    let local = config.in_process_engine();
    let dir = SocketDir::new();
    let mut servers = launch_cluster(server_binary(), &dir.0, &config).expect("cluster launches");
    let request = QueryRequest::for_user(2)
        .k(8)
        .alpha(0.4)
        .origin(Point::new(0.5, 0.5))
        .algorithm(Algorithm::Ais)
        .build()
        .unwrap();
    {
        let remote = connect(&servers);
        remote.query(&request).expect("healthy cluster answers");
        // The coordinator (and its pooled connections) drops here; the
        // servers keep running.
    }

    // SIGKILL gives the server no chance to unlink its socket — the stale
    // file stays behind, exactly what a crashed production shard leaves.
    let socket_path = dir.0.join("shard-1.sock");
    servers[1].kill();
    assert!(
        socket_path.exists(),
        "a hard kill must leave the socket file behind for this test to mean anything"
    );

    // Restarting on the same path must reclaim the stale socket (and not
    // error with AddrInUse, which is the regression this guards).
    servers[1] = ShardProcess::spawn(server_binary(), &Endpoint::Unix(socket_path), 1, &config)
        .expect("restart over the stale socket file");

    let mut remote = connect(&servers);
    let expected = local.run(&request).expect("in-process query");
    let got = remote.query(&request).expect("restarted cluster answers");
    assert_eq!(got.ranked, expected.ranked, "post-restart answers diverge");
    remote
        .shutdown()
        .expect("both servers acknowledge shutdown");
}
