//! Criterion bench for Figure 8: query run-time of every SSRQ method as the
//! result size `k` grows (gowalla-like dataset, alpha = 0.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssrq_bench::{BenchDataset, Scale};
use ssrq_core::{Algorithm, QueryRequest};
use std::time::Duration;

fn bench_effect_of_k(c: &mut Criterion) {
    let bench = BenchDataset::gowalla(Scale::quick());
    let mut group = c.benchmark_group("fig08_effect_of_k/gowalla-like");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let algorithms = [
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::Ais,
    ];
    for k in [10usize, 30, 50] {
        for algorithm in algorithms {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), k), &k, |b, &k| {
                let mut next = 0usize;
                b.iter(|| {
                    let user = bench.workload.users[next % bench.workload.users.len()];
                    next += 1;
                    bench
                        .engine
                        .run(
                            &QueryRequest::for_user(user)
                                .k(k)
                                .alpha(0.3)
                                .algorithm(algorithm)
                                .build()
                                .expect("valid request"),
                        )
                        .expect("query succeeds")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_effect_of_k);
criterion_main!(benches);
