//! Criterion bench for Figure 12: the effect of the grid granularity `s` on
//! the grid-based methods (SPA and the AIS flavours).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssrq_bench::{BenchDataset, Scale};
use ssrq_core::{Algorithm, QueryRequest};
use ssrq_data::DatasetConfig;
use std::time::Duration;

fn bench_grid_granularity(c: &mut Criterion) {
    let scale = Scale::quick();
    let dataset = DatasetConfig::gowalla_like(scale.gowalla_users).generate();
    let mut group = c.benchmark_group("fig12_grid_granularity/gowalla-like");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for s in [5u32, 10, 25] {
        let bench =
            BenchDataset::from_dataset("gowalla-like", dataset.clone(), scale.queries, |b| {
                b.granularity(s)
            });
        for algorithm in [Algorithm::Spa, Algorithm::AisBid, Algorithm::Ais] {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), s), &s, |b, _| {
                let mut next = 0usize;
                b.iter(|| {
                    let user = bench.workload.users[next % bench.workload.users.len()];
                    next += 1;
                    bench
                        .engine
                        .run(
                            &QueryRequest::for_user(user)
                                .k(30)
                                .alpha(0.3)
                                .algorithm(algorithm)
                                .build()
                                .expect("valid request"),
                        )
                        .expect("query succeeds")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_grid_granularity);
criterion_main!(benches);
