//! Micro-benchmarks of the substrates the SSRQ system is built on: graph
//! searches, landmark bounds, spatial NN search, index construction and
//! maintenance.  These are not paper figures; they support performance work
//! on the building blocks.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssrq_core::GeoSocialEngine;
use ssrq_data::DatasetConfig;
use ssrq_graph::{
    dijkstra_all, ChQueryScratch, ContractionHierarchy, GraphDistanceEngine, IncrementalDijkstra,
    LandmarkSelection, LandmarkSet, SearchScratch, SharingMode,
};
use ssrq_spatial::{Point, Rect, UniformGrid};
use std::time::Duration;

fn bench_graph_substrate(c: &mut Criterion) {
    let dataset = DatasetConfig::gowalla_like(10_000).generate();
    let graph = dataset.graph();
    let landmarks = LandmarkSet::build(graph, 8, LandmarkSelection::FarthestFirst, 7).unwrap();

    let mut group = c.benchmark_group("substrate/graph");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("dijkstra_full_sssp", |b| {
        let mut source = 0u32;
        b.iter(|| {
            source = (source + 13) % graph.node_count() as u32;
            dijkstra_all(graph, source)
        });
    });

    group.bench_function("incremental_dijkstra_100_settles", |b| {
        let mut source = 0u32;
        let mut scratch = SearchScratch::with_capacity(graph.node_count());
        b.iter(|| {
            source = (source + 17) % graph.node_count() as u32;
            let mut search = IncrementalDijkstra::new(graph, source, &mut scratch);
            for _ in 0..100 {
                if search.next_settled(graph).is_none() {
                    break;
                }
            }
            search.settled_count()
        });
    });

    // The same workload with a cold scratch per query: the difference is the
    // O(|V|) allocation the SearchScratch substrate removes from the
    // per-query hot path.
    group.bench_function("incremental_dijkstra_100_settles_cold_scratch", |b| {
        let mut source = 0u32;
        b.iter(|| {
            source = (source + 17) % graph.node_count() as u32;
            let mut scratch = SearchScratch::new();
            let mut search = IncrementalDijkstra::new(graph, source, &mut scratch);
            for _ in 0..100 {
                if search.next_settled(graph).is_none() {
                    break;
                }
            }
            search.settled_count()
        });
    });

    group.bench_function("landmark_lower_bound", |b| {
        let mut pair = 0u32;
        b.iter(|| {
            pair = (pair + 31) % (graph.node_count() as u32 - 1);
            landmarks.lower_bound(pair, pair + 1)
        });
    });

    group.bench_function("shared_distance_engine_30_targets", |b| {
        let mut source = 0u32;
        let mut scratch = SearchScratch::with_capacity(graph.node_count());
        b.iter(|| {
            source = (source + 11) % graph.node_count() as u32;
            let mut engine = GraphDistanceEngine::new(
                graph,
                &landmarks,
                source,
                SharingMode::Shared,
                &mut scratch,
            );
            let mut total = 0.0;
            for offset in 1..=30u32 {
                let target = (source + offset * 97) % graph.node_count() as u32;
                let d = engine.distance(target);
                if d.is_finite() {
                    total += d;
                }
            }
            total
        });
    });
    group.finish();

    let mut group = c.benchmark_group("substrate/contraction_hierarchies");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    // CH preprocessing blows up super-quadratically on these hub-heavy
    // graphs (see the ROADMAP open items); keep the CH bench dataset small
    // so the suite stays runnable.
    let small = DatasetConfig::gowalla_like(400).generate();
    let ch = ContractionHierarchy::new(small.graph());
    // Warm scratch is what the engine's *-CH paths actually pay
    // (distance_with through QueryContext); the cold variant shows the
    // per-call allocation the scratch removes.
    group.bench_function("ch_point_to_point_warm_scratch", |b| {
        let mut pair = 0u32;
        let n = small.graph().node_count() as u32;
        let mut scratch = ChQueryScratch::default();
        b.iter(|| {
            pair = (pair + 7) % (n - 1);
            ch.distance_with(pair, (pair * 31 + 5) % n, &mut scratch)
        });
    });
    group.bench_function("ch_point_to_point_cold_scratch", |b| {
        let mut pair = 0u32;
        let n = small.graph().node_count() as u32;
        b.iter(|| {
            pair = (pair + 7) % (n - 1);
            ch.distance(pair, (pair * 31 + 5) % n)
        });
    });
    group.finish();
}

fn bench_spatial_substrate(c: &mut Criterion) {
    let dataset = DatasetConfig::gowalla_like(20_000).generate();
    let grid = UniformGrid::bulk_load(
        Rect::new(Point::new(-0.01, -0.01), Point::new(1.01, 1.01)),
        32,
        dataset.located_users(),
    )
    .unwrap();

    let mut group = c.benchmark_group("substrate/spatial");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    for k in [10usize, 100] {
        group.bench_with_input(BenchmarkId::new("grid_k_nearest", k), &k, |b, &k| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let q = Point::new((i as f64 * 0.137) % 1.0, (i as f64 * 0.311) % 1.0);
                grid.k_nearest(q, k)
            });
        });
    }

    group.bench_function("grid_location_update", |b| {
        let mut grid = grid.clone();
        let ids: Vec<u32> = dataset.located_users().map(|(id, _)| id).collect();
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            let id = ids[i % ids.len()];
            let p = Point::new((i as f64 * 0.173) % 1.0, (i as f64 * 0.037) % 1.0);
            grid.update(id, p).unwrap()
        });
    });
    group.finish();
}

fn bench_index_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate/index_build");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let dataset = DatasetConfig::gowalla_like(10_000).generate();
    group.bench_function("engine_build_10k_users", |b| {
        b.iter(|| GeoSocialEngine::builder(dataset.clone()).build().unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_graph_substrate,
    bench_spatial_substrate,
    bench_index_construction
);
criterion_main!(benches);
