//! Criterion bench for Figure 9: query run-time versus the preference
//! parameter `alpha` (gowalla-like dataset, k = 30).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssrq_bench::{BenchDataset, Scale};
use ssrq_core::{Algorithm, QueryRequest};
use std::time::Duration;

fn bench_effect_of_alpha(c: &mut Criterion) {
    let bench = BenchDataset::gowalla(Scale::quick());
    let mut group = c.benchmark_group("fig09_effect_of_alpha/gowalla-like");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let algorithms = [
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::Ais,
    ];
    for alpha in [0.1f64, 0.5, 0.9] {
        for algorithm in algorithms {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), format!("{alpha}")),
                &alpha,
                |b, &alpha| {
                    let mut next = 0usize;
                    b.iter(|| {
                        let user = bench.workload.users[next % bench.workload.users.len()];
                        next += 1;
                        bench
                            .engine
                            .run(
                                &QueryRequest::for_user(user)
                                    .k(30)
                                    .alpha(alpha)
                                    .algorithm(algorithm)
                                    .build()
                                    .expect("valid request"),
                            )
                            .expect("query succeeds")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_effect_of_alpha);
criterion_main!(benches);
