//! Criterion bench for Figure 11: the pre-computation method ("AIS-Cache")
//! for different cached-list lengths `t`, against plain AIS.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssrq_bench::{BenchDataset, Scale};
use ssrq_core::{Algorithm, QueryRequest};
use std::time::Duration;

fn bench_precomputation(c: &mut Criterion) {
    let mut bench = BenchDataset::gowalla(Scale::quick());
    let users = bench.workload.users.clone();
    let n = bench.engine.dataset().user_count();
    let mut group = c.benchmark_group("fig11_precomputation/gowalla-like");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));

    group.bench_function("AIS", |b| {
        let mut next = 0usize;
        b.iter(|| {
            let user = users[next % users.len()];
            next += 1;
            bench
                .engine
                .run(
                    &QueryRequest::for_user(user)
                        .k(30)
                        .alpha(0.3)
                        .algorithm(Algorithm::Ais)
                        .build()
                        .expect("valid request"),
                )
                .expect("query succeeds")
        });
    });

    for fraction in [0.01f64, 0.05, 0.2] {
        let t = ((n as f64 * fraction) as usize).max(50);
        // Swap only the cache per list length; the base indexes are reused.
        bench
            .engine
            .install_social_cache(ssrq_core::SocialNeighborCache::build(
                bench.engine.dataset().graph(),
                &users,
                t,
            ));
        group.bench_with_input(BenchmarkId::new("AIS-Cache", t), &t, |b, _| {
            let mut next = 0usize;
            b.iter(|| {
                let user = users[next % users.len()];
                next += 1;
                bench
                    .engine
                    .run(
                        &QueryRequest::for_user(user)
                            .k(30)
                            .alpha(0.3)
                            .algorithm(Algorithm::SfaCached)
                            .build()
                            .expect("valid request"),
                    )
                    .expect("query succeeds")
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_precomputation);
criterion_main!(benches);
