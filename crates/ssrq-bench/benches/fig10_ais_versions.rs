//! Criterion bench for Figure 10: the three AIS flavours (AIS-BID without
//! computation sharing, AIS⁻ with sharing, AIS with sharing + delayed
//! evaluation) as `k` grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssrq_bench::{BenchDataset, Scale};
use ssrq_core::{Algorithm, QueryRequest};
use std::time::Duration;

fn bench_ais_versions(c: &mut Criterion) {
    let bench = BenchDataset::gowalla(Scale::quick());
    let mut group = c.benchmark_group("fig10_ais_versions/gowalla-like");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for k in [10usize, 30, 50] {
        for algorithm in [Algorithm::AisBid, Algorithm::AisMinus, Algorithm::Ais] {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), k), &k, |b, &k| {
                let mut next = 0usize;
                b.iter(|| {
                    let user = bench.workload.users[next % bench.workload.users.len()];
                    next += 1;
                    bench
                        .engine
                        .run(
                            &QueryRequest::for_user(user)
                                .k(k)
                                .alpha(0.3)
                                .algorithm(algorithm)
                                .build()
                                .expect("valid request"),
                        )
                        .expect("query succeeds")
                });
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_ais_versions);
criterion_main!(benches);
