//! Criterion bench for Figure 13: the high-average-degree (Twitter-like)
//! dataset, varying `k` and `alpha`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssrq_bench::{BenchDataset, Scale};
use ssrq_core::{Algorithm, QueryRequest};
use std::time::Duration;

fn bench_twitter(c: &mut Criterion) {
    let bench = BenchDataset::twitter(Scale::quick());
    let algorithms = [
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::Ais,
    ];

    let mut group = c.benchmark_group("fig13_twitter/effect_of_k");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for k in [10usize, 50] {
        for algorithm in algorithms {
            group.bench_with_input(BenchmarkId::new(algorithm.name(), k), &k, |b, &k| {
                let mut next = 0usize;
                b.iter(|| {
                    let user = bench.workload.users[next % bench.workload.users.len()];
                    next += 1;
                    bench
                        .engine
                        .run(
                            &QueryRequest::for_user(user)
                                .k(k)
                                .alpha(0.3)
                                .algorithm(algorithm)
                                .build()
                                .expect("valid request"),
                        )
                        .expect("query succeeds")
                });
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("fig13_twitter/effect_of_alpha");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for alpha in [0.1f64, 0.9] {
        for algorithm in algorithms {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), format!("{alpha}")),
                &alpha,
                |b, &alpha| {
                    let mut next = 0usize;
                    b.iter(|| {
                        let user = bench.workload.users[next % bench.workload.users.len()];
                        next += 1;
                        bench
                            .engine
                            .run(
                                &QueryRequest::for_user(user)
                                    .k(30)
                                    .alpha(alpha)
                                    .algorithm(algorithm)
                                    .build()
                                    .expect("valid request"),
                            )
                            .expect("query succeeds")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_twitter);
criterion_main!(benches);
