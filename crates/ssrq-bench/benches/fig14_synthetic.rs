//! Criterion bench for Figure 14: (a) correlation-controlled synthetic
//! locations and (b) scalability over forest-fire samples.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ssrq_bench::{BenchDataset, Scale};
use ssrq_core::{Algorithm, GeoSocialDataset, GeoSocialEngine, QueryRequest};
use ssrq_data::{
    correlated_locations, forest_fire_sample, Correlation, DatasetConfig, QueryWorkload,
};
use std::time::Duration;

fn bench_correlation(c: &mut Criterion) {
    let scale = Scale::quick();
    let base = DatasetConfig::foursquare_like(scale.gowalla_users).generate();
    let anchor = QueryWorkload::generate(&base, 1, 0xFA14).users[0];
    let mut group = c.benchmark_group("fig14a_correlation");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for correlation in Correlation::ALL {
        let locations = correlated_locations(base.graph(), anchor, correlation, 0xC0FE);
        let dataset =
            GeoSocialDataset::new(base.graph().clone(), locations).expect("valid dataset");
        let engine = GeoSocialEngine::builder(dataset)
            .build()
            .expect("engine builds");
        for algorithm in [Algorithm::Sfa, Algorithm::Tsa, Algorithm::Ais] {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), correlation.name()),
                &correlation,
                |b, _| {
                    b.iter(|| {
                        engine
                            .run(
                                &QueryRequest::for_user(anchor)
                                    .k(30)
                                    .alpha(0.5)
                                    .algorithm(algorithm)
                                    .build()
                                    .expect("valid request"),
                            )
                            .expect("query succeeds")
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_data_size(c: &mut Criterion) {
    let scale = Scale::quick();
    let base = DatasetConfig::foursquare_like(scale.foursquare_users).generate();
    let mut group = c.benchmark_group("fig14b_data_size");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for fraction in [0.33f64, 1.0] {
        let target = ((base.user_count() as f64) * fraction) as usize;
        let (graph, mapping) = forest_fire_sample(base.graph(), target, 0.7, 0x14B);
        let locations: Vec<_> = mapping.iter().map(|&old| base.location(old)).collect();
        let dataset = GeoSocialDataset::new(graph, locations).expect("valid dataset");
        let bench =
            BenchDataset::from_dataset(format!("sample-{target}"), dataset, scale.queries, |b| b);
        for algorithm in [Algorithm::Sfa, Algorithm::Ais] {
            group.bench_with_input(
                BenchmarkId::new(algorithm.name(), target),
                &target,
                |b, _| {
                    let mut next = 0usize;
                    b.iter(|| {
                        let user = bench.workload.users[next % bench.workload.users.len()];
                        next += 1;
                        bench
                            .engine
                            .run(
                                &QueryRequest::for_user(user)
                                    .k(30)
                                    .alpha(0.3)
                                    .algorithm(algorithm)
                                    .build()
                                    .expect("valid request"),
                            )
                            .expect("query succeeds")
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_correlation, bench_data_size);
criterion_main!(benches);
