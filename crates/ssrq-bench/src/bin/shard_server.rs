//! One SSRQ shard as an OS process: regenerates the deterministic
//! synthetic deployment, restricts it to this shard's slice of the
//! location space, and serves it over the wire protocol until a
//! `Shutdown` frame (or a signal) arrives.
//!
//! Every process of a deployment must be launched with the **same**
//! `--users/--seed/--partitioning/--shards` so they regenerate the same
//! dataset and the same [`ShardAssignment`]; only `--shard` and
//! `--listen` differ.
//!
//! ```sh
//! shard-server --listen unix:/tmp/ssrq-0.sock --shard 0 --shards 4 \
//!              --users 5000 --seed 4242 --partitioning spatial:16
//! ```
//!
//! The server prints exactly one `listening on <endpoint>` line to stdout
//! once the socket is bound — with `tcp:host:0` the line carries the
//! kernel-assigned port, so a parent process can parse it.

use ssrq_core::{ChBuild, GeoSocialEngine};
use ssrq_data::{DatasetConfig, QueryWorkload};
use ssrq_net::{Endpoint, ShardServer};
use ssrq_shard::{Partitioning, ShardAssignment};
use std::io::Write;

struct Args {
    listen: Endpoint,
    shard: usize,
    shards: usize,
    users: usize,
    seed: u64,
    partitioning: Partitioning,
    with_ch: bool,
    /// `(queries, seed, t)` of a social-neighbour cache warmed for the
    /// deterministic workload `QueryWorkload::generate(dataset, queries,
    /// seed)` — what the AIS-Cache algorithm needs.
    cache: Option<(usize, u64, usize)>,
    /// Query worker threads (None = the server's default).
    workers: Option<usize>,
}

fn usage() -> ! {
    eprintln!(
        "usage: shard-server --listen <unix:PATH|tcp:ADDR> --shard <I> --shards <N>\n\
         \x20                 [--users <N>] [--seed <S>] [--partitioning <hash|spatial:CELLS>]\n\
         \x20                 [--with-ch] [--cache-workload <QUERIES,SEED,T>] [--workers <N>]"
    );
    std::process::exit(2);
}

fn parse_partitioning(text: &str) -> Option<Partitioning> {
    if text == "hash" {
        return Some(Partitioning::UserHash);
    }
    let cells = text.strip_prefix("spatial:")?.parse().ok()?;
    Some(Partitioning::SpatialGrid {
        cells_per_axis: cells,
    })
}

fn parse_args() -> Args {
    let mut listen = None;
    let mut shard = None;
    let mut shards = None;
    let mut users = 1_000usize;
    let mut seed = 4242u64;
    let mut partitioning = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let mut with_ch = false;
    let mut cache = None;
    let mut workers = None;

    let raw: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    usage()
                })
                .as_str()
        };
        match arg.as_str() {
            "--listen" => match Endpoint::parse(value("--listen")) {
                Ok(endpoint) => listen = Some(endpoint),
                Err(e) => {
                    eprintln!("--listen: {e}");
                    usage()
                }
            },
            "--shard" => shard = value("--shard").parse().ok(),
            "--shards" => shards = value("--shards").parse().ok(),
            "--users" => users = value("--users").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--partitioning" => {
                partitioning =
                    parse_partitioning(value("--partitioning")).unwrap_or_else(|| usage())
            }
            "--with-ch" => with_ch = true,
            "--workers" => workers = Some(value("--workers").parse().unwrap_or_else(|_| usage())),
            "--cache-workload" => {
                let spec = value("--cache-workload");
                let mut parts = spec.split(',');
                let parsed = (|| {
                    Some((
                        parts.next()?.parse().ok()?,
                        parts.next()?.parse().ok()?,
                        parts.next()?.parse().ok()?,
                    ))
                })();
                match parsed {
                    Some(triple) => cache = Some(triple),
                    None => {
                        eprintln!("--cache-workload wants QUERIES,SEED,T (e.g. 8,17,80)");
                        usage()
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    let (Some(listen), Some(shard), Some(shards)) = (listen, shard, shards) else {
        usage()
    };
    if shards == 0 || shard >= shards {
        eprintln!("--shard {shard} is out of range for --shards {shards}");
        usage()
    }
    Args {
        listen,
        shard,
        shards,
        users,
        seed,
        partitioning,
        with_ch,
        cache,
        workers,
    }
}

fn main() {
    let args = parse_args();

    let dataset = DatasetConfig::gowalla_like(args.users)
        .with_seed(args.seed)
        .generate();
    let assignment = ShardAssignment::compute(&dataset, args.partitioning, args.shards)
        .expect("shard assignment computes");
    let owner = assignment.owners(&dataset);
    let shard_dataset = dataset.restrict_locations(|u| owner[u as usize] as usize == args.shard);

    let mut builder = GeoSocialEngine::builder(shard_dataset);
    if args.with_ch {
        builder = builder.with_ch(ChBuild::Lazy);
    }
    if let Some((queries, workload_seed, t)) = args.cache {
        // The cache is warmed on the *full* dataset's workload so every
        // shard holds the same cached users as the in-process deployment.
        let workload = QueryWorkload::generate(&dataset, queries, workload_seed);
        builder = builder.cache_social_neighbors(workload.users, t);
    }
    let engine = builder.build().expect("shard engine builds");

    let mut server = ShardServer::bind(&args.listen, engine, args.shard, assignment)
        .unwrap_or_else(|e| {
            eprintln!("shard {} failed to bind {}: {e}", args.shard, args.listen);
            std::process::exit(1);
        });
    if let Some(workers) = args.workers {
        server = server.with_workers(workers);
    }
    // The bound endpoint, not the requested one: `tcp:host:0` resolves to
    // the kernel-assigned port here.
    println!("listening on {}", server.endpoint());
    std::io::stdout().flush().expect("stdout flush");

    if let Err(e) = server.serve() {
        eprintln!("shard {} serve loop failed: {e}", args.shard);
        std::process::exit(1);
    }
}
