//! One SSRQ shard as an OS process: regenerates the deterministic
//! synthetic deployment, restricts it to this shard's slice of the
//! location space, and serves it over the wire protocol until a
//! `Shutdown` frame (or a signal) arrives.
//!
//! Every process of a deployment must be launched with the **same**
//! `--users/--seed/--partitioning/--shards` so they regenerate the same
//! dataset and the same [`ShardAssignment`]; only `--shard` and
//! `--listen` differ.
//!
//! ```sh
//! shard-server --listen unix:/tmp/ssrq-0.sock --shard 0 --shards 4 \
//!              --users 5000 --seed 4242 --partitioning spatial:16
//! ```
//!
//! The server prints exactly one `listening on <endpoint>` line to stdout
//! once the socket is bound — with `tcp:host:0` the line carries the
//! kernel-assigned port, so a parent process can parse it.  `--log`
//! enables structured stderr logging (the default stays silent, so the
//! readiness line is all a parent ever has to parse), `--slow-query-ms`
//! arms the slow-query log, and `shard-server --introspect <endpoint>`
//! snapshots a *running* server's metrics registry and span log over the
//! wire and prints them (Prometheus text, then span trees) instead of
//! serving.

use ssrq_core::{ChBuild, GeoSocialEngine};
use ssrq_data::{DatasetConfig, QueryWorkload};
use ssrq_net::{Endpoint, Message, ShardClient, ShardServer};
use ssrq_obs::{render_prometheus, Level, Logger};
use ssrq_shard::{Partitioning, ShardAssignment};
use std::io::Write;
use std::time::Duration;

struct Args {
    listen: Endpoint,
    shard: usize,
    shards: usize,
    users: usize,
    seed: u64,
    partitioning: Partitioning,
    with_ch: bool,
    /// `(queries, seed, t)` of a social-neighbour cache warmed for the
    /// deterministic workload `QueryWorkload::generate(dataset, queries,
    /// seed)` — what the AIS-Cache algorithm needs.
    cache: Option<(usize, u64, usize)>,
    /// Query worker threads (None = the server's default).
    workers: Option<usize>,
    /// Structured stderr logging threshold (None = silent).
    log: Option<Level>,
    /// Slow-query log threshold (None = disabled).
    slow_query: Option<Duration>,
}

fn usage() -> ! {
    eprintln!(
        "usage: shard-server --listen <unix:PATH|tcp:ADDR> --shard <I> --shards <N>\n\
         \x20                 [--users <N>] [--seed <S>] [--partitioning <hash|spatial:CELLS>]\n\
         \x20                 [--with-ch] [--cache-workload <QUERIES,SEED,T>] [--workers <N>]\n\
         \x20                 [--log <error|warn|info|debug>] [--slow-query-ms <MS>]\n\
         \x20      shard-server --introspect <unix:PATH|tcp:ADDR>"
    );
    std::process::exit(2);
}

/// Snapshots a running server's observability state over the wire and
/// prints it: the Prometheus exposition of its metrics registry, then the
/// retained span trees (slow-query offenders included).
fn introspect(endpoint: &Endpoint) -> i32 {
    let report = ShardClient::connect(endpoint, Duration::from_secs(10))
        .and_then(|mut client| client.call(&Message::MetricsRequest).map(|(r, _)| r));
    match report {
        Ok(Message::MetricsReport(report)) => {
            print!("{}", render_prometheus(&report.metrics));
            for spans in &report.spans {
                print!("{}", spans.render());
            }
            0
        }
        Ok(other) => {
            eprintln!("{endpoint} answered the metrics request with {other:?}");
            1
        }
        Err(e) => {
            eprintln!("introspecting {endpoint} failed: {e}");
            1
        }
    }
}

fn parse_partitioning(text: &str) -> Option<Partitioning> {
    if text == "hash" {
        return Some(Partitioning::UserHash);
    }
    let cells = text.strip_prefix("spatial:")?.parse().ok()?;
    Some(Partitioning::SpatialGrid {
        cells_per_axis: cells,
    })
}

fn parse_args() -> Args {
    let mut listen = None;
    let mut shard = None;
    let mut shards = None;
    let mut users = 1_000usize;
    let mut seed = 4242u64;
    let mut partitioning = Partitioning::SpatialGrid { cells_per_axis: 8 };
    let mut with_ch = false;
    let mut cache = None;
    let mut workers = None;
    let mut log = None;
    let mut slow_query = None;

    let raw: Vec<String> = std::env::args().skip(1).collect();
    if raw.first().map(String::as_str) == Some("--introspect") {
        let Some(Ok(endpoint)) = raw.get(1).map(|s| Endpoint::parse(s)) else {
            eprintln!("--introspect wants a server endpoint");
            usage()
        };
        std::process::exit(introspect(&endpoint));
    }
    let mut iter = raw.iter();
    while let Some(arg) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .unwrap_or_else(|| {
                    eprintln!("{name} needs a value");
                    usage()
                })
                .as_str()
        };
        match arg.as_str() {
            "--listen" => match Endpoint::parse(value("--listen")) {
                Ok(endpoint) => listen = Some(endpoint),
                Err(e) => {
                    eprintln!("--listen: {e}");
                    usage()
                }
            },
            "--shard" => shard = value("--shard").parse().ok(),
            "--shards" => shards = value("--shards").parse().ok(),
            "--users" => users = value("--users").parse().unwrap_or_else(|_| usage()),
            "--seed" => seed = value("--seed").parse().unwrap_or_else(|_| usage()),
            "--partitioning" => {
                partitioning =
                    parse_partitioning(value("--partitioning")).unwrap_or_else(|| usage())
            }
            "--with-ch" => with_ch = true,
            "--workers" => workers = Some(value("--workers").parse().unwrap_or_else(|_| usage())),
            "--log" => {
                log = Some(value("--log").parse::<Level>().unwrap_or_else(|_| {
                    eprintln!("--log wants error, warn, info or debug");
                    usage()
                }))
            }
            "--slow-query-ms" => {
                let ms: u64 = value("--slow-query-ms").parse().unwrap_or_else(|_| usage());
                slow_query = Some(Duration::from_millis(ms));
            }
            "--cache-workload" => {
                let spec = value("--cache-workload");
                let mut parts = spec.split(',');
                let parsed = (|| {
                    Some((
                        parts.next()?.parse().ok()?,
                        parts.next()?.parse().ok()?,
                        parts.next()?.parse().ok()?,
                    ))
                })();
                match parsed {
                    Some(triple) => cache = Some(triple),
                    None => {
                        eprintln!("--cache-workload wants QUERIES,SEED,T (e.g. 8,17,80)");
                        usage()
                    }
                }
            }
            other => {
                eprintln!("unknown flag {other}");
                usage()
            }
        }
    }
    let (Some(listen), Some(shard), Some(shards)) = (listen, shard, shards) else {
        usage()
    };
    if shards == 0 || shard >= shards {
        eprintln!("--shard {shard} is out of range for --shards {shards}");
        usage()
    }
    Args {
        listen,
        shard,
        shards,
        users,
        seed,
        partitioning,
        with_ch,
        cache,
        workers,
        log,
        slow_query,
    }
}

fn main() {
    let args = parse_args();

    let dataset = DatasetConfig::gowalla_like(args.users)
        .with_seed(args.seed)
        .generate();
    let assignment = ShardAssignment::compute(&dataset, args.partitioning, args.shards)
        .expect("shard assignment computes");
    let owner = assignment.owners(&dataset);
    let shard_dataset = dataset.restrict_locations(|u| owner[u as usize] as usize == args.shard);

    let mut builder = GeoSocialEngine::builder(shard_dataset);
    if args.with_ch {
        builder = builder.with_ch(ChBuild::Lazy);
    }
    if let Some((queries, workload_seed, t)) = args.cache {
        // The cache is warmed on the *full* dataset's workload so every
        // shard holds the same cached users as the in-process deployment.
        let workload = QueryWorkload::generate(&dataset, queries, workload_seed);
        builder = builder.cache_social_neighbors(workload.users, t);
    }
    let engine = builder.build().expect("shard engine builds");

    let mut server = ShardServer::bind(&args.listen, engine, args.shard, assignment)
        .unwrap_or_else(|e| {
            eprintln!("shard {} failed to bind {}: {e}", args.shard, args.listen);
            std::process::exit(1);
        });
    if let Some(workers) = args.workers {
        server = server.with_workers(workers);
    }
    if let Some(level) = args.log {
        server = server.with_logger(Logger::with_level(level));
    }
    if let Some(threshold) = args.slow_query {
        server = server.with_slow_query_threshold(threshold);
    }
    // The bound endpoint, not the requested one: `tcp:host:0` resolves to
    // the kernel-assigned port here.
    println!("listening on {}", server.endpoint());
    std::io::stdout().flush().expect("stdout flush");

    if let Err(e) = server.serve() {
        eprintln!("shard {} serve loop failed: {e}", args.shard);
        std::process::exit(1);
    }
}
