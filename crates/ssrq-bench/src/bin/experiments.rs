//! Experiment harness: regenerates every table and figure of the paper's
//! evaluation (§6) on the synthetic stand-in datasets.
//!
//! ```sh
//! cargo run --release -p ssrq-bench --bin experiments -- all --quick
//! cargo run --release -p ssrq-bench --bin experiments -- fig8 --with-ch
//! cargo run --release -p ssrq-bench --bin experiments -- fig11 --queries 50
//! ```
//!
//! Experiments: `table2 table3 fig7a fig7b fig8 fig9 fig10 fig11 fig12
//! fig13 fig14a fig14b ablation throughput latency sharding memory scale
//! rpc obs planner all` (`scale` is the 10k→1M sweep persisted to
//! `BENCH_scale.json`, `rpc` spawns `shard-server` processes and persists
//! `BENCH_rpc.json`, `obs` drives traced queries over such processes and
//! persists `BENCH_obs.json`, `planner` races `Algorithm::Auto` against
//! every fixed algorithm and persists `BENCH_planner.json`; none of the
//! four is part of `all`).
//!
//! Flags: `--quick` (small datasets), `--full` (paper-scale datasets),
//! `--scale <factor>`, `--queries <n>`, `--with-ch` (include the expensive
//! Contraction Hierarchies baselines in fig8), `--out <path>` (artifact
//! path of the `scale` / `rpc` / `obs` / `planner` experiments, defaults
//! `BENCH_<experiment>.json`).

use ssrq_bench::report::FigureReport;
use ssrq_bench::{
    max_result_hops, measure_algorithm, measure_batch_qps, measure_memory, measure_prefix,
    measure_sequential_qps, measure_sharding, run_scale_sweep, single_engine_breakdown,
    validate_scale_report, BenchDataset, Json, Scale, ScaleSweepConfig,
};
use ssrq_core::{
    Algorithm, ChBuild, GeoSocialDataset, GeoSocialEngine, QueryRequest, SocialNeighborCache,
};
use ssrq_data::{
    correlated_locations, forest_fire_sample, jaccard, Correlation, DataStatistics, DatasetConfig,
    QueryWorkload,
};
use ssrq_graph::LandmarkSelection;
use std::time::Instant;

/// The k values of Table 3.
const K_VALUES: [usize; 5] = [10, 20, 30, 40, 50];
/// The alpha values of Table 3.
const ALPHA_VALUES: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];
/// The grid granularity values of Table 3.
const S_VALUES: [u32; 5] = [5, 10, 15, 20, 25];
/// Default k (Table 3).
const DEFAULT_K: usize = 30;
/// Default alpha (Table 3).
const DEFAULT_ALPHA: f64 = 0.3;

/// The algorithm line-up of Figures 8, 9, 13, 14.
const MAIN_ALGORITHMS: [Algorithm; 5] = [
    Algorithm::Sfa,
    Algorithm::Spa,
    Algorithm::Tsa,
    Algorithm::TsaQc,
    Algorithm::Ais,
];
/// The AIS variants of Figure 10 / 12.
const AIS_VARIANTS: [Algorithm; 3] = [Algorithm::AisBid, Algorithm::AisMinus, Algorithm::Ais];

struct Options {
    scale: Scale,
    with_ch: bool,
    /// The raw `--scale` factor (1.0 when unset); the `scale` sweep applies
    /// it to its own 10k→1M user counts rather than to [`Scale`].
    factor: f64,
    /// The raw `--queries` override, if any.
    queries: Option<usize>,
    /// `--out` override of the artifact path (`scale` and `rpc` have
    /// different defaults, so the unset case is kept distinguishable).
    out: Option<String>,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut experiment = "all".to_string();
    let mut scale = Scale::default();
    let mut with_ch = false;
    let mut factor: Option<f64> = None;
    let mut queries: Option<usize> = None;
    let mut out: Option<String> = None;

    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--quick" => scale = Scale::quick(),
            "--full" => scale = Scale::full(),
            "--with-ch" => with_ch = true,
            "--scale" => {
                factor = iter.next().and_then(|v| v.parse().ok());
            }
            "--queries" => {
                queries = iter.next().and_then(|v| v.parse().ok());
            }
            "--out" => {
                if let Some(path) = iter.next() {
                    out = Some(path.clone());
                }
            }
            name if !name.starts_with("--") => experiment = name.to_string(),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    if let Some(f) = factor {
        scale = scale.scaled_by(f);
    }
    if let Some(q) = queries {
        scale.queries = q;
    }
    let options = Options {
        scale,
        with_ch,
        factor: factor.unwrap_or(1.0),
        queries,
        out,
    };

    let started = Instant::now();
    println!(
        "SSRQ experiment harness — experiment `{experiment}`, scale: gowalla={} foursquare={} twitter={} queries={}",
        options.scale.gowalla_users,
        options.scale.foursquare_users,
        options.scale.twitter_users,
        options.scale.queries
    );

    match experiment.as_str() {
        "table2" => table2(&options),
        "table3" => table3(),
        "fig7a" => fig7a(&options),
        "fig7b" => fig7b(&options),
        "fig8" => fig8(&options),
        "fig9" => fig9(&options),
        "fig10" => fig10(&options),
        "fig11" => fig11(&options),
        "fig12" => fig12(&options),
        "fig13" => fig13(&options),
        "fig14a" => fig14a(&options),
        "fig14b" => fig14b(&options),
        "ablation" => ablation(&options),
        "throughput" => throughput(&options),
        "latency" => latency(&options),
        "sharding" => sharding(&options),
        "memory" => memory(&options),
        "scale" => scale_sweep(&options),
        "rpc" => rpc(&options),
        "obs" => obs(&options),
        "planner" => planner(&options),
        "all" => {
            table2(&options);
            table3();
            fig7a(&options);
            fig7b(&options);
            fig8(&options);
            fig9(&options);
            fig10(&options);
            fig11(&options);
            fig12(&options);
            fig13(&options);
            fig14a(&options);
            fig14b(&options);
            ablation(&options);
            throughput(&options);
            latency(&options);
            sharding(&options);
            memory(&options);
        }
        other => {
            eprintln!("unknown experiment `{other}`");
            std::process::exit(2);
        }
    }
    println!("\ntotal harness time: {:?}", started.elapsed());
}

// ---------------------------------------------------------------------------
// Table 2 / Table 3
// ---------------------------------------------------------------------------

fn table2(options: &Options) {
    println!("\n## Table 2 — data statistics (synthetic stand-ins)\n");
    println!("{}", DataStatistics::table_header());
    for (name, dataset) in [
        (
            "gowalla-like",
            DatasetConfig::gowalla_like(options.scale.gowalla_users).generate(),
        ),
        (
            "foursquare-like",
            DatasetConfig::foursquare_like(options.scale.foursquare_users).generate(),
        ),
        (
            "twitter-like",
            DatasetConfig::twitter_like(options.scale.twitter_users).generate(),
        ),
    ] {
        println!("{}", DataStatistics::compute(name, &dataset).table_row());
    }
}

fn table3() {
    println!("\n## Table 3 — query and system parameters\n");
    println!("{:<28} {:>10} {:<28}", "Parameter", "Default", "Range");
    println!(
        "{:<28} {:>10} {:<28}",
        "size of result k", DEFAULT_K, "10, 20, 30, 40, 50"
    );
    println!(
        "{:<28} {:>10} {:<28}",
        "preference parameter alpha", DEFAULT_ALPHA, "0.1, 0.3, 0.5, 0.7, 0.9"
    );
    println!(
        "{:<28} {:>10} {:<28}",
        "grid granularity s", 10, "5, 10, 15, 20, 25"
    );
    println!(
        "{:<28} {:>10} {:<28}",
        "number of landmarks M", 8, "(fine-tuned)"
    );
}

// ---------------------------------------------------------------------------
// Figure 7 — nature of the SSRQ query
// ---------------------------------------------------------------------------

fn fig7a(options: &Options) {
    let mut report = FigureReport::new("Figure 7(a) — hops to the farthest SSRQ result vs k", "k");
    let datasets = [
        BenchDataset::gowalla(options.scale),
        BenchDataset::foursquare(options.scale),
    ];
    for k in K_VALUES {
        report.push_x(k);
        for bench in &datasets {
            let prefix = if bench.name.starts_with("gowalla") {
                "G."
            } else {
                "F."
            };
            let mut ctx = bench.engine.make_context();
            let mut hops = Vec::new();
            for &user in &bench.workload.users {
                let request = QueryRequest::for_user(user)
                    .k(k)
                    .alpha(DEFAULT_ALPHA)
                    .algorithm(Algorithm::Ais)
                    .build()
                    .expect("valid harness parameters");
                if let Some(h) = max_result_hops(&bench.engine, &request, &mut ctx) {
                    hops.push(h);
                }
            }
            let avg = hops.iter().sum::<usize>() as f64 / hops.len().max(1) as f64;
            let max = hops.iter().copied().max().unwrap_or(0);
            report.push_cell(&format!("{prefix} Avg. hop"), format!("{avg:.2}"));
            report.push_cell(&format!("{prefix} Max. hop"), max);
        }
    }
    print!("{}", report.render());
}

fn fig7b(options: &Options) {
    let mut report = FigureReport::new(
        "Figure 7(b) — Jaccard ratio of SSRQ vs single-domain top-k (foursquare-like)",
        "alpha",
    );
    let bench = BenchDataset::foursquare(options.scale);
    let k = DEFAULT_K;
    let mut ctx = bench.engine.make_context();
    for alpha in ALPHA_VALUES {
        report.push_x(alpha);
        let mut vs_social = 0.0;
        let mut vs_spatial = 0.0;
        let mut counted = 0usize;
        for &user in &bench.workload.users {
            let request = QueryRequest::for_user(user)
                .k(k)
                .alpha(alpha)
                .algorithm(Algorithm::Ais)
                .build()
                .expect("valid harness parameters");
            let Ok(ssrq) = bench.engine.run_with(&request, &mut ctx) else {
                continue;
            };
            let ssrq_users = ssrq.users();
            let social_topk = social_top_k(&bench.engine, user, k, &mut ctx);
            let spatial_topk = spatial_top_k(&bench.engine, user, k);
            vs_social += jaccard(&ssrq_users, &social_topk);
            vs_spatial += jaccard(&ssrq_users, &spatial_topk);
            counted += 1;
        }
        let counted = counted.max(1) as f64;
        report.push_cell("vs. social", format!("{:.4}", vs_social / counted));
        report.push_cell("vs. spatial", format!("{:.4}", vs_spatial / counted));
    }
    print!("{}", report.render());
}

fn social_top_k(
    engine: &GeoSocialEngine,
    user: u32,
    k: usize,
    ctx: &mut ssrq_core::QueryContext,
) -> Vec<u32> {
    let graph = engine.dataset().graph();
    let mut search = ssrq_graph::IncrementalDijkstra::new(graph, user, ctx.social_scratch());
    let mut out = Vec::with_capacity(k);
    while out.len() < k {
        match search.next_settled(graph) {
            Some((v, _)) if v != user => out.push(v),
            Some(_) => {}
            None => break,
        }
    }
    out
}

fn spatial_top_k(engine: &GeoSocialEngine, user: u32, k: usize) -> Vec<u32> {
    let Some(location) = engine.dataset().location(user) else {
        return Vec::new();
    };
    engine
        .grid()
        .k_nearest(location, k + 1)
        .into_iter()
        .map(|n| n.id)
        .filter(|&u| u != user)
        .take(k)
        .collect()
}

// ---------------------------------------------------------------------------
// Figure 8 / 9 — effect of k and alpha on all methods
// ---------------------------------------------------------------------------

fn fig8(options: &Options) {
    // Declare the CH index lazily: it is only built (on first *-CH query)
    // when --with-ch asks for those baselines.
    let with_lazy_ch = |scale: Scale, config: DatasetConfig| {
        BenchDataset::from_config(config, scale.queries, |b| b.with_ch(ChBuild::Lazy))
    };
    let datasets = vec![
        with_lazy_ch(
            options.scale,
            DatasetConfig::gowalla_like(options.scale.gowalla_users),
        ),
        with_lazy_ch(
            options.scale,
            DatasetConfig::foursquare_like(options.scale.foursquare_users),
        ),
    ];
    for bench in &datasets {
        let mut runtime = FigureReport::new(
            format!("Figure 8 — run-time (ms) vs k ({})", bench.name),
            "k",
        );
        let mut pops =
            FigureReport::new(format!("Figure 8 — pop ratio vs k ({})", bench.name), "k");
        for k in K_VALUES {
            runtime.push_x(k);
            pops.push_x(k);
            for algorithm in MAIN_ALGORITHMS {
                let m = measure_algorithm(
                    &bench.engine,
                    algorithm,
                    &bench.workload.users,
                    k,
                    DEFAULT_ALPHA,
                );
                runtime.push_runtime(algorithm.name(), &m);
                pops.push_pop_ratio(algorithm.name(), &m);
            }
            if options.with_ch {
                // The CH baselines repeat expensive point-to-point work; a
                // smaller query sample keeps the harness responsive.
                let sample: Vec<u32> = bench
                    .workload
                    .users
                    .iter()
                    .copied()
                    .take((options.scale.queries / 5).max(5))
                    .collect();
                for algorithm in [Algorithm::SfaCh, Algorithm::SpaCh, Algorithm::TsaCh] {
                    let m = measure_algorithm(&bench.engine, algorithm, &sample, k, DEFAULT_ALPHA);
                    runtime.push_runtime(algorithm.name(), &m);
                }
            }
        }
        print!("{}", runtime.render());
        print!("{}", pops.render());
    }
    if !options.with_ch {
        println!(
            "(the SFA-CH / SPA-CH / TSA-CH series are skipped by default — pass --with-ch to include them)"
        );
    }
}

fn fig9(options: &Options) {
    for bench in [
        BenchDataset::gowalla(options.scale),
        BenchDataset::foursquare(options.scale),
    ] {
        let mut runtime = FigureReport::new(
            format!("Figure 9 — run-time (ms) vs alpha ({})", bench.name),
            "alpha",
        );
        for alpha in ALPHA_VALUES {
            runtime.push_x(alpha);
            for algorithm in MAIN_ALGORITHMS {
                let m = measure_algorithm(
                    &bench.engine,
                    algorithm,
                    &bench.workload.users,
                    DEFAULT_K,
                    alpha,
                );
                runtime.push_runtime(algorithm.name(), &m);
            }
        }
        print!("{}", runtime.render());
    }
}

// ---------------------------------------------------------------------------
// Figure 10 — AIS versions
// ---------------------------------------------------------------------------

fn fig10(options: &Options) {
    for bench in [
        BenchDataset::gowalla(options.scale),
        BenchDataset::foursquare(options.scale),
    ] {
        let mut runtime = FigureReport::new(
            format!(
                "Figure 10 — AIS versions, run-time (ms) vs k ({})",
                bench.name
            ),
            "k",
        );
        let mut pops = FigureReport::new(
            format!("Figure 10 — AIS versions, pop ratio vs k ({})", bench.name),
            "k",
        );
        for k in K_VALUES {
            runtime.push_x(k);
            pops.push_x(k);
            for algorithm in AIS_VARIANTS {
                let m = measure_algorithm(
                    &bench.engine,
                    algorithm,
                    &bench.workload.users,
                    k,
                    DEFAULT_ALPHA,
                );
                runtime.push_runtime(algorithm.name(), &m);
                pops.push_pop_ratio(algorithm.name(), &m);
            }
        }
        print!("{}", runtime.render());
        print!("{}", pops.render());
    }
}

// ---------------------------------------------------------------------------
// Figure 11 — pre-computation
// ---------------------------------------------------------------------------

fn fig11(options: &Options) {
    for mut bench in [
        BenchDataset::gowalla(options.scale),
        BenchDataset::foursquare(options.scale),
    ] {
        let mut report = FigureReport::new(
            format!(
                "Figure 11 — pre-computation: run-time (ms) vs cached list length t ({})",
                bench.name
            ),
            "t",
        );
        // The cached-neighbour list length, scaled to the dataset (the paper
        // sweeps 1K..10K on 196K/1.88M users).
        let n = bench.engine.dataset().user_count();
        let t_values: Vec<usize> = [0.01, 0.02, 0.05, 0.10, 0.20]
            .iter()
            .map(|f| ((n as f64 * f) as usize).max(50))
            .collect();
        let ais = measure_algorithm(
            &bench.engine,
            Algorithm::Ais,
            &bench.workload.users,
            DEFAULT_K,
            DEFAULT_ALPHA,
        );
        let users = bench.workload.users.clone();
        for &t in &t_values {
            report.push_x(t);
            report.push_runtime("AIS", &ais);
            // Swap only the cache per list length t; the base indexes
            // (landmarks, grid, AIS) are built once per dataset.
            bench
                .engine
                .install_social_cache(SocialNeighborCache::build(
                    bench.engine.dataset().graph(),
                    &users,
                    t,
                ));
            let m = measure_algorithm(
                &bench.engine,
                Algorithm::SfaCached,
                &users,
                DEFAULT_K,
                DEFAULT_ALPHA,
            );
            report.push_runtime("AIS-Cache", &m);
        }
        print!("{}", report.render());
    }
}

// ---------------------------------------------------------------------------
// Figure 12 — grid granularity
// ---------------------------------------------------------------------------

fn fig12(options: &Options) {
    for (name, config) in [
        (
            "gowalla-like",
            DatasetConfig::gowalla_like(options.scale.gowalla_users),
        ),
        (
            "foursquare-like",
            DatasetConfig::foursquare_like(options.scale.foursquare_users),
        ),
    ] {
        let dataset = config.generate();
        let mut report = FigureReport::new(
            format!("Figure 12 — run-time (ms) vs grid granularity s ({name})"),
            "s",
        );
        for s in S_VALUES {
            report.push_x(s);
            let bench =
                BenchDataset::from_dataset(name, dataset.clone(), options.scale.queries, |b| {
                    b.granularity(s)
                });
            for algorithm in [
                Algorithm::Spa,
                Algorithm::AisBid,
                Algorithm::AisMinus,
                Algorithm::Ais,
            ] {
                let m = measure_algorithm(
                    &bench.engine,
                    algorithm,
                    &bench.workload.users,
                    DEFAULT_K,
                    DEFAULT_ALPHA,
                );
                report.push_runtime(algorithm.name(), &m);
            }
        }
        print!("{}", report.render());
    }
}

// ---------------------------------------------------------------------------
// Figure 13 — high-degree (Twitter-like) dataset
// ---------------------------------------------------------------------------

fn fig13(options: &Options) {
    let bench = BenchDataset::twitter(options.scale);
    let mut by_k = FigureReport::new(
        format!("Figure 13(a) — run-time (ms) vs k ({})", bench.name),
        "k",
    );
    for k in K_VALUES {
        by_k.push_x(k);
        for algorithm in MAIN_ALGORITHMS {
            let m = measure_algorithm(
                &bench.engine,
                algorithm,
                &bench.workload.users,
                k,
                DEFAULT_ALPHA,
            );
            by_k.push_runtime(algorithm.name(), &m);
        }
    }
    print!("{}", by_k.render());

    let mut by_alpha = FigureReport::new(
        format!("Figure 13(b) — run-time (ms) vs alpha ({})", bench.name),
        "alpha",
    );
    for alpha in ALPHA_VALUES {
        by_alpha.push_x(alpha);
        for algorithm in MAIN_ALGORITHMS {
            let m = measure_algorithm(
                &bench.engine,
                algorithm,
                &bench.workload.users,
                DEFAULT_K,
                alpha,
            );
            by_alpha.push_runtime(algorithm.name(), &m);
        }
    }
    print!("{}", by_alpha.render());
}

// ---------------------------------------------------------------------------
// Figure 14 — synthetic correlation and scalability
// ---------------------------------------------------------------------------

fn fig14a(options: &Options) {
    let mut report = FigureReport::new(
        "Figure 14(a) — run-time (ms) vs social/spatial correlation",
        "correlation",
    );
    // Keep the social distances of a foursquare-like graph (as the paper
    // does) but assign correlation-controlled locations around a handful of
    // anchor users; each anchor issues the query.
    let base = DatasetConfig::foursquare_like(options.scale.gowalla_users).generate();
    let anchors = QueryWorkload::generate(&base, 5, 0xFA14).users;
    for correlation in Correlation::ALL {
        report.push_x(correlation.name());
        let mut totals = vec![0.0f64; MAIN_ALGORITHMS.len()];
        let mut counted = 0usize;
        for &anchor in &anchors {
            let locations = correlated_locations(base.graph(), anchor, correlation, 0xC0FE);
            let Ok(dataset) = GeoSocialDataset::new(base.graph().clone(), locations) else {
                continue;
            };
            let Ok(engine) = GeoSocialEngine::builder(dataset).build() else {
                continue;
            };
            counted += 1;
            for (i, algorithm) in MAIN_ALGORITHMS.iter().enumerate() {
                let m = measure_algorithm(&engine, *algorithm, &[anchor], DEFAULT_K, 0.5);
                totals[i] += m.avg_millis();
            }
        }
        for (i, algorithm) in MAIN_ALGORITHMS.iter().enumerate() {
            report.push_cell(
                algorithm.name(),
                format!("{:.3}", totals[i] / counted.max(1) as f64),
            );
        }
    }
    print!("{}", report.render());
}

fn fig14b(options: &Options) {
    let mut report = FigureReport::new(
        "Figure 14(b) — run-time (ms) vs data size (forest-fire samples)",
        "users",
    );
    let base = DatasetConfig::foursquare_like(options.scale.foursquare_users).generate();
    let full = base.user_count();
    for fraction in [1.0 / 3.0, 2.0 / 3.0, 1.0] {
        let target = ((full as f64) * fraction) as usize;
        report.push_x(target);
        let (graph, mapping) = forest_fire_sample(base.graph(), target, 0.7, 0x14B);
        let locations: Vec<_> = mapping.iter().map(|&old| base.location(old)).collect();
        let Ok(dataset) = GeoSocialDataset::new(graph, locations) else {
            continue;
        };
        let bench = BenchDataset::from_dataset(
            format!("sample-{target}"),
            dataset,
            options.scale.queries,
            |b| b,
        );
        for algorithm in MAIN_ALGORITHMS {
            let m = measure_algorithm(
                &bench.engine,
                algorithm,
                &bench.workload.users,
                DEFAULT_K,
                DEFAULT_ALPHA,
            );
            report.push_runtime(algorithm.name(), &m);
        }
    }
    print!("{}", report.render());
}

// ---------------------------------------------------------------------------
// Throughput — sequential vs parallel batch execution
// ---------------------------------------------------------------------------

/// Beyond the paper: queries/second of the main algorithms, sequential
/// (one thread, reused context) vs `run_batch` at increasing worker
/// counts.  This is the serving-throughput trajectory future scaling work
/// measures itself against.
fn throughput(options: &Options) {
    let available = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // Always measure at least one batch configuration: on a single-core
    // machine "batch x2" still exercises the parallel path (timeshared).
    let thread_counts: Vec<usize> = [2usize, 4, 8, 16]
        .into_iter()
        .filter(|&t| t <= available.max(2))
        .collect();
    let bench = BenchDataset::gowalla(options.scale);
    let mut report = FigureReport::new(
        format!(
            "Throughput — queries/sec, sequential vs batch ({}, {} queries, {} cores available)",
            bench.name,
            bench.workload.len(),
            available
        ),
        "algorithm",
    );
    for algorithm in MAIN_ALGORITHMS {
        report.push_x(algorithm.name());
        let (_, sequential_qps) = measure_sequential_qps(
            &bench.engine,
            algorithm,
            &bench.workload.users,
            DEFAULT_K,
            DEFAULT_ALPHA,
        );
        report.push_cell("sequential", format!("{sequential_qps:.0}"));
        for &threads in &thread_counts {
            let (_, batch_qps) = measure_batch_qps(
                &bench.engine,
                algorithm,
                &bench.workload.users,
                DEFAULT_K,
                DEFAULT_ALPHA,
                threads,
            );
            report.push_cell(&format!("batch x{threads}"), format!("{batch_qps:.0}"));
        }
    }
    print!("{}", report.render());
}

// ---------------------------------------------------------------------------
// Latency — first-result / prefix streaming vs eager execution
// ---------------------------------------------------------------------------

/// Beyond the paper: time (and search work) until the pull-lazy stream
/// yields its first / top-5 result versus the eager full run.  This is the
/// trajectory figure of the resumable-driver refactor: the
/// incremental-threshold algorithms should show first-result latency well
/// below full-query latency, with a matching drop in relaxed edges.
fn latency(options: &Options) {
    let bench = BenchDataset::gowalla(options.scale);
    let mut report = FigureReport::new(
        format!(
            "Latency — first-result vs full query ({}, {} queries, k = {})",
            bench.name,
            bench.workload.len(),
            DEFAULT_K
        ),
        "algorithm",
    );
    for algorithm in MAIN_ALGORITHMS {
        report.push_x(algorithm.name());
        let first = measure_prefix(
            &bench.engine,
            algorithm,
            &bench.workload.users,
            DEFAULT_K,
            DEFAULT_ALPHA,
            1,
        );
        let top5 = measure_prefix(
            &bench.engine,
            algorithm,
            &bench.workload.users,
            DEFAULT_K,
            DEFAULT_ALPHA,
            5,
        );
        report.push_cell(
            "full (ms)",
            format!("{:.3}", first.avg_full.as_secs_f64() * 1e3),
        );
        report.push_cell(
            "first (ms)",
            format!("{:.3}", first.avg_prefix.as_secs_f64() * 1e3),
        );
        report.push_cell(
            "top-5 (ms)",
            format!("{:.3}", top5.avg_prefix.as_secs_f64() * 1e3),
        );
        report.push_cell("speedup@1", format!("{:.1}x", first.speedup()));
        report.push_cell("relaxed full", format!("{:.0}", first.full_relaxed));
        report.push_cell("relaxed@1", format!("{:.0}", first.prefix_relaxed));
        report.push_cell("work@1", format!("{:.3}", first.work_ratio()));
    }
    print!("{}", report.render());
}

// ---------------------------------------------------------------------------
// Sharding — scatter-gather throughput vs shard count
// ---------------------------------------------------------------------------

/// Beyond the paper: batch queries/second of the sharded scatter-gather
/// layer as the shard count grows, for both partitioning policies, plus the
/// shards-skipped-per-query counts from the coordinator's threshold /
/// bounding-rect pruning.  The single-engine batch throughput on the same
/// workload is the baseline every configuration is compared against.
fn sharding(options: &Options) {
    use ssrq_data::DatasetConfig;
    use ssrq_shard::Partitioning;

    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let dataset = DatasetConfig::gowalla_like(options.scale.gowalla_users).generate();
    let workload = QueryWorkload::generate(&dataset, options.scale.queries, 0x5A4D);

    // Baseline: the unpartitioned engine on the identical batch.
    let single = GeoSocialEngine::builder(dataset.clone())
        .build()
        .expect("single engine builds");
    let (baseline_ok, baseline_qps) = measure_batch_qps(
        &single,
        Algorithm::Ais,
        &workload.users,
        DEFAULT_K,
        DEFAULT_ALPHA,
        threads,
    );

    let mut report = FigureReport::new(
        format!(
            "Sharding — scatter-gather batch q/s vs shard count (gowalla-like, {} queries, {} worker threads; single-engine baseline {:.0} q/s)",
            baseline_ok, threads, baseline_qps
        ),
        "shards",
    );
    for shards in [1usize, 2, 4, 8] {
        report.push_x(shards);
        for (label, policy) in [
            ("hash", Partitioning::UserHash),
            ("spatial", Partitioning::SpatialGrid { cells_per_axis: 16 }),
        ] {
            // The lazy CH slot lives in the shared dataset core, so a
            // `--with-ch` build timing is only isolated on a fresh dataset
            // (otherwise the first configuration's CH would be reused and
            // every later build would look free).
            let config_dataset = if options.with_ch {
                DatasetConfig::gowalla_like(options.scale.gowalla_users).generate()
            } else {
                dataset.clone()
            };
            let config_workload = if options.with_ch {
                QueryWorkload::generate(&config_dataset, options.scale.queries, 0x5A4D)
            } else {
                workload.clone()
            };
            let m = measure_sharding(
                &config_dataset,
                policy,
                shards,
                &config_workload.users,
                DEFAULT_K,
                DEFAULT_ALPHA,
                threads,
                options.with_ch,
            );
            report.push_cell(&format!("{label} q/s"), format!("{:.0}", m.batch_qps));
            report.push_cell(
                &format!("{label} skipped/query"),
                format!("{:.2}", m.avg_skipped_shards),
            );
            report.push_cell(
                &format!("{label} build (ms)"),
                format!("{:.0}", m.build_time.as_secs_f64() * 1e3),
            );
        }
    }
    print!("{}", report.render());
    println!(
        "(skipped/query counts shards the coordinator pruned via the running f_k threshold and the shard bounding rectangles — only the spatial policy has informative rectangles)"
    );
    if options.with_ch {
        println!(
            "(--with-ch: build (ms) includes one eager Contraction Hierarchies build shared by every shard through the Arc-backed dataset core — pre-refactor this column grew by one full CH build per shard)"
        );
    } else {
        println!(
            "(pass --with-ch to include an eager per-deployment Contraction Hierarchies build in the build-time column — built once and shared across shards; keep the dataset small, CH preprocessing is quadratic-ish on these graphs)"
        );
    }
}

// ---------------------------------------------------------------------------
// Memory — shared immutable substrate vs per-shard cloning
// ---------------------------------------------------------------------------

/// Beyond the paper: approximate resident bytes of the sharded layer per
/// shard count, split into `Arc`-shared graph-only artifacts (graph,
/// landmarks, CH — resident once) and per-shard location state (location
/// vectors, grids, AIS indexes), against the counterfactual cost of the
/// pre-refactor ownership model in which every shard cloned the graph side.
fn memory(options: &Options) {
    use ssrq_shard::Partitioning;

    let dataset = DatasetConfig::gowalla_like(options.scale.gowalla_users).generate();
    let single = single_engine_breakdown(&dataset);
    println!(
        "\n## Memory — single engine baseline (gowalla-like, {} users): graph {}, landmarks {}, locations {}, grid {}, AIS {}",
        dataset.user_count(),
        fmt_bytes(single.graph_bytes),
        fmt_bytes(single.landmarks_bytes),
        fmt_bytes(single.locations_bytes),
        fmt_bytes(single.grid_bytes),
        fmt_bytes(single.ais_bytes),
    );
    println!(
        "   AIS occupancy: {} of {} grid cells materialised ({:.1}%) — empty cells share one static summary and cost nothing",
        single.ais_occupied_cells,
        single.ais_total_cells,
        single.ais_occupancy_ratio() * 100.0,
    );
    let mut report = FigureReport::new(
        format!(
            "Memory — approx. resident bytes vs shard count (gowalla-like, spatial partitioning{})",
            if options.with_ch { ", CH built" } else { "" }
        ),
        "shards",
    );
    for shards in [1usize, 2, 4, 8] {
        report.push_x(shards);
        // With --with-ch, regenerate the dataset per configuration: the
        // lazy CH slot lives in the shared dataset core, so reusing one
        // dataset would pay the CH build only on the first row and make
        // the later build timings look free rather than shared-and-flat.
        let config_dataset = if options.with_ch {
            DatasetConfig::gowalla_like(options.scale.gowalla_users).generate()
        } else {
            dataset.clone()
        };
        let m = measure_memory(
            &config_dataset,
            Partitioning::SpatialGrid { cells_per_axis: 16 },
            shards,
            options.with_ch,
        );
        report.push_cell("shared", fmt_bytes(m.shared_bytes));
        report.push_cell("per-shard", fmt_bytes(m.per_shard_bytes));
        report.push_cell("total", fmt_bytes(m.total_bytes()));
        report.push_cell("cloned (pre-refactor)", fmt_bytes(m.cloned_estimate_bytes));
        report.push_cell("savings", format!("{:.2}x", m.savings_factor()));
        report.push_cell(
            "build (ms)",
            format!("{:.0}", m.build_time.as_secs_f64() * 1e3),
        );
    }
    print!("{}", report.render());
    println!(
        "(shared = graph + landmarks{} behind Arc handles, resident once; cloned = the same configuration if every shard cloned them, the pre-refactor ownership model{})",
        if options.with_ch { " + CH" } else { "" },
        if options.with_ch {
            ""
        } else {
            "; pass --with-ch to include the Contraction Hierarchies index"
        }
    );
}

// ---------------------------------------------------------------------------
// Scale — the 10k→1M sweep behind BENCH_scale.json
// ---------------------------------------------------------------------------

/// Beyond the paper: the million-user scale pass.  Generates gowalla-like
/// datasets at 10k/50k/200k/1M users (scaled by `--scale`), records the
/// shared-graph bytes under both CSR layouts, and measures the single
/// engine plus both partitioning policies at several shard counts — per
/// shard, with AIS occupancy.  The artifact is written to `--out`
/// (default `BENCH_scale.json`), re-read, re-parsed and validated: the run
/// fails if the file does not parse or any AIS index exceeds its
/// occupancy-proportional budget.
fn scale_sweep(options: &Options) {
    let mut config = ScaleSweepConfig::default().scaled_by(options.factor);
    if let Some(q) = options.queries {
        config.queries = q;
    }
    println!(
        "\n## Scale sweep — gowalla-like at {:?} users, shard counts {:?}, {} queries",
        config.user_counts, config.shard_counts, config.queries
    );
    let out = options
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_scale.json".into());
    let report = run_scale_sweep(&config);
    std::fs::write(&out, report.render()).expect("scale artifact is writable");

    // Trust nothing the writer meant: re-read the artifact from disk and
    // validate the parsed document.
    let persisted = std::fs::read_to_string(&out).expect("scale artifact re-reads");
    let parsed = Json::parse(&persisted).expect("scale artifact re-parses as JSON");
    if let Err(violation) = validate_scale_report(&parsed) {
        eprintln!("BENCH_scale.json failed validation: {violation}");
        std::process::exit(1);
    }
    let scales = parsed
        .get("scales")
        .and_then(Json::as_array)
        .expect("validated report has scales");
    for point in scales {
        let users = point.get("users").and_then(Json::as_usize).unwrap_or(0);
        let graph = point.get("graph").expect("validated scale point has graph");
        let standard = graph
            .get("standard_bytes")
            .and_then(Json::as_usize)
            .unwrap_or(0);
        let compressed = graph
            .get("compressed_bytes")
            .and_then(Json::as_usize)
            .unwrap_or(0);
        println!(
            "   {users} users: graph {} -> {} ({:.0}% saved), single-engine {:.0} q/s",
            fmt_bytes(standard),
            fmt_bytes(compressed),
            (1.0 - compressed as f64 / standard.max(1) as f64) * 100.0,
            point
                .get("single")
                .and_then(|s| s.get("qps"))
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        );
    }
    println!(
        "wrote {out} ({} scale points) — parsed back and AIS occupancy budgets verified",
        scales.len()
    );
}

// ---------------------------------------------------------------------------
// RPC — in-process vs multi-process socket scatter-gather
// ---------------------------------------------------------------------------

/// Beyond the paper: the multi-process deployment.  Spawns `shard-server`
/// processes over Unix-domain sockets at 2/4/8 shards, runs the identical
/// query batch through the in-process [`ShardedEngine`] and the socket
/// [`RemoteShardedEngine`] coordinator (every remote answer is checked
/// against the in-process one), and reports q/s, per-query wire latency
/// and wire volume.  The artifact is written to `--out` (default
/// `BENCH_rpc.json`), re-read, re-parsed and validated.
///
/// [`ShardedEngine`]: ssrq_shard::ShardedEngine
/// [`RemoteShardedEngine`]: ssrq_net::RemoteShardedEngine
fn rpc(options: &Options) {
    use ssrq_bench::{
        launch_cluster, measure_rpc, sibling_shard_server, validate_rpc_report, DeploymentConfig,
    };
    use ssrq_net::RemoteShardedEngine;
    use ssrq_shard::Partitioning;

    let Some(binary) = sibling_shard_server() else {
        eprintln!(
            "shard-server binary not found next to this executable — build it first:\n\
             \x20   cargo build --release -p ssrq-bench --bin shard-server"
        );
        std::process::exit(1);
    };
    let users = options.scale.gowalla_users;
    let queries = options.scale.queries.max(1);
    let out = options
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_rpc.json".into());
    let dir = std::env::temp_dir().join(format!("ssrq-rpc-{}", std::process::id()));
    println!(
        "\n## RPC — in-process vs socket scatter-gather (gowalla-like, {users} users, {queries} queries per shard count)"
    );

    let mut report = FigureReport::new(
        "RPC — scatter-gather q/s and wire volume vs shard processes, sequential and \
         speculative scatter (AIS, Unix sockets)",
        "shards",
    );
    let mut deployments = Vec::new();
    for shards in [2usize, 4, 8] {
        let config = DeploymentConfig::new(
            users,
            4242,
            shards,
            Partitioning::SpatialGrid { cells_per_axis: 16 },
        );
        let local = config.in_process_engine();
        let servers =
            launch_cluster(&binary, &dir, &config).expect("shard-server processes launch");
        let endpoints = servers.iter().map(|s| s.endpoint.clone()).collect();
        let mut remote = RemoteShardedEngine::builder(endpoints)
            .connect()
            .expect("coordinator connects");

        let workload = QueryWorkload::generate(&config.dataset(), queries, 0x5A4D);
        let batch: Vec<QueryRequest> = workload
            .users
            .iter()
            .map(|&u| {
                QueryRequest::for_user(u)
                    .k(DEFAULT_K)
                    .alpha(DEFAULT_ALPHA)
                    .algorithm(Algorithm::Ais)
                    .build()
                    .expect("valid request")
            })
            .collect();
        let m = measure_rpc(&local, &mut remote, &batch);
        remote.shutdown().expect("servers acknowledge shutdown");
        drop(servers);

        report.push_x(shards);
        report.push_cell("in-process q/s", format!("{:.0}", m.in_process_qps));
        report.push_cell("seq q/s", format!("{:.0}", m.remote_sequential.qps));
        report.push_cell("spec q/s", format!("{:.0}", m.remote_speculative.qps));
        report.push_cell(
            "seq latency (us)",
            format!(
                "{:.0}",
                m.remote_sequential.mean_latency.as_secs_f64() * 1e6
            ),
        );
        report.push_cell(
            "spec latency (us)",
            format!(
                "{:.0}",
                m.remote_speculative.mean_latency.as_secs_f64() * 1e6
            ),
        );
        report.push_cell(
            "seq round trips/q",
            format!("{:.2}", m.remote_sequential.round_trips_per_query),
        );
        report.push_cell(
            "spec round trips/q",
            format!("{:.2}", m.remote_speculative.round_trips_per_query),
        );
        report.push_cell(
            "tighten frames/q",
            format!("{:.2}", m.remote_speculative.tighten_frames_per_query),
        );
        deployments.push(m.to_json());
    }
    let _ = std::fs::remove_dir_all(&dir);
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    print!("{}", report.render());
    println!(
        "(every remote answer in both modes was checked against the in-process engine; \
         seq round trips/query < shards means the forwarded f_k threshold let the sequential \
         coordinator skip whole shard processes, while the speculative scatter pays extra round \
         trips — and one-way tighten frames, never counted as round trips — to overlap the \
         per-shard work and close the wall-clock gap as processes are added)"
    );
    println!(
        "(speculation converts spare cores into latency: the first wave's concurrent searches \
         overlap only to the extent the host runs them in parallel — this host has {cores} \
         core(s) for the shard processes, so at {cores} < shards the convoyed first wave \
         cannot beat the threshold-ordered sequential visit on wall-clock; the artifact \
         records `cores` so the comparison stays interpretable)"
    );

    let artifact = Json::Obj(vec![
        ("experiment".into(), Json::str("rpc")),
        ("dataset".into(), Json::str("gowalla-like")),
        ("users".into(), Json::num(users)),
        ("queries".into(), Json::num(queries)),
        ("algorithm".into(), Json::str(Algorithm::Ais.name())),
        ("transport".into(), Json::str("unix")),
        ("cores".into(), Json::num(cores)),
        ("deployments".into(), Json::Arr(deployments)),
    ]);
    std::fs::write(&out, artifact.render()).expect("rpc artifact is writable");
    let persisted = std::fs::read_to_string(&out).expect("rpc artifact re-reads");
    let parsed = Json::parse(&persisted).expect("rpc artifact re-parses as JSON");
    if let Err(violation) = validate_rpc_report(&parsed) {
        eprintln!("{out} failed validation: {violation}");
        std::process::exit(1);
    }
    println!(
        "wrote {out} ({} deployments) — parsed back and wire invariants verified",
        parsed
            .get("deployments")
            .and_then(Json::as_array)
            .map(<[_]>::len)
            .unwrap_or(0)
    );
}

// ---------------------------------------------------------------------------
// OBS — end-to-end tracing, metrics and introspection over real processes
// ---------------------------------------------------------------------------

/// Observability smoke over a real multi-process deployment: spawns
/// `shard-server` processes (with structured logging and slow-query logs
/// armed), drives traced queries through the socket coordinator, then
/// snapshots every server's metrics registry over the wire and validates
/// the whole pipeline — trace ids bit-identical in every shard's span
/// log, query counters covering the workload, consistent histograms, a
/// captured slow query, and the calibrated instrumentation overhead under
/// the 2% bar.  The artifact is written to `--out` (default
/// `BENCH_obs.json`), re-read, re-parsed and validated.
fn obs(options: &Options) {
    use ssrq_bench::{
        launch_cluster, measure_obs, sibling_shard_server, validate_obs_report, DeploymentConfig,
    };
    use ssrq_net::RemoteShardedEngine;
    use ssrq_shard::Partitioning;
    use ssrq_spatial::Point;
    use std::time::Duration;

    let Some(binary) = sibling_shard_server() else {
        eprintln!(
            "shard-server binary not found next to this executable — build it first:\n\
             \x20   cargo build --release -p ssrq-bench --bin shard-server"
        );
        std::process::exit(1);
    };
    let users = options.scale.gowalla_users;
    // The servers' span logs retain 256 traces; stay under that so no
    // trace id this run checks for was evicted.
    let queries = options.scale.queries.clamp(1, 256);
    let shards = 3usize;
    let out = options
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_obs.json".into());
    let dir = std::env::temp_dir().join(format!("ssrq-obs-{}", std::process::id()));
    println!(
        "\n## OBS — tracing, metrics and introspection over {shards} shard processes \
         (gowalla-like, {users} users, {queries} traced queries)"
    );

    let mut config = DeploymentConfig::new(
        users,
        4242,
        shards,
        Partitioning::SpatialGrid { cells_per_axis: 16 },
    );
    // Exercise the logging and slow-query satellites on the server side
    // too (warn keeps stdout readiness parsing and stderr noise sane).
    config.extra_args = vec![
        "--log".into(),
        "warn".into(),
        "--slow-query-ms".into(),
        "1000".into(),
    ];
    let servers = launch_cluster(&binary, &dir, &config).expect("shard-server processes launch");
    let endpoints = servers.iter().map(|s| s.endpoint.clone()).collect();
    let mut remote = RemoteShardedEngine::builder(endpoints)
        .slow_query_threshold(Duration::ZERO)
        .health_check(Duration::from_millis(100), 3)
        .connect()
        .expect("coordinator connects");

    // A pinned origin and a large k keep the f_k threshold from skipping
    // any shard, so every server must see every trace id.
    let workload = QueryWorkload::generate(&config.dataset(), queries, 0x0B5);
    let batch: Vec<QueryRequest> = workload
        .users
        .iter()
        .map(|&u| {
            QueryRequest::for_user(u)
                .k(64)
                .alpha(DEFAULT_ALPHA)
                .origin(Point::new(0.5, 0.5))
                .algorithm(Algorithm::Ais)
                .build()
                .expect("valid request")
        })
        .collect();
    let m = measure_obs(&remote, &batch).expect("observability measurement succeeds");
    remote.shutdown().expect("servers acknowledge shutdown");
    drop(servers);
    let _ = std::fs::remove_dir_all(&dir);

    println!(
        "trace coverage: {}/{} ids bit-identical in all {} span logs",
        m.trace_coverage, m.queries, m.shards
    );
    println!(
        "query counts: coordinator {}, shards {:?}; histograms consistent: {}",
        m.coordinator_queries, m.server_queries, m.histograms_consistent
    );
    println!(
        "mean traced query: {:.0}us; slow-query log captured {} offenders",
        m.mean_query_latency.as_secs_f64() * 1e6,
        m.slow_queries
    );
    println!(
        "instrumentation: {:.1}ns/op x {} ops/query = {:.4}% of a query (bar: 2%)",
        m.metrics_ns_per_op,
        m.instrument_ops_per_query,
        m.overhead_fraction * 100.0
    );
    println!("sample coordinator span tree:\n{}", m.sample_trace);

    let artifact = m.to_json();
    std::fs::write(&out, artifact.render()).expect("obs artifact is writable");
    let persisted = std::fs::read_to_string(&out).expect("obs artifact re-reads");
    let parsed = Json::parse(&persisted).expect("obs artifact re-parses as JSON");
    if let Err(violation) = validate_obs_report(&parsed) {
        eprintln!("{out} failed validation: {violation}");
        std::process::exit(1);
    }
    println!("wrote {out} — parsed back and observability invariants verified");
}

// ---------------------------------------------------------------------------
// Planner — Algorithm::Auto vs fixed algorithms vs the per-query oracle
// ---------------------------------------------------------------------------

/// Beyond the paper: the adaptive query planner.  Races `Algorithm::Auto`
/// (cost-model selection + churn-aware hot-result cache) against every
/// fixed index-free algorithm and the clairvoyant per-query oracle on a
/// mixed workload repeated for several passes, checking every Auto answer
/// against the stored exhaustive result.  The artifact is written to
/// `--out` (default `BENCH_planner.json`), re-read, re-parsed and
/// validated against the acceptance bars: Auto within 1.15x of the
/// oracle, at least 1.5x faster than the worst fixed algorithm, and
/// cache hits under 10% of a cold query.
fn planner(options: &Options) {
    use ssrq_bench::{measure_planner, validate_planner_report, PlannerBenchConfig};

    let mut config = PlannerBenchConfig::default().scaled_by(options.factor);
    if let Some(q) = options.queries {
        config.distinct_queries = q.max(1);
    }
    let out = options
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_planner.json".into());
    println!(
        "\n## Planner — Auto vs fixed algorithms vs per-query oracle (gowalla-like, {} users, \
         {} distinct queries x {} passes)",
        config.users, config.distinct_queries, config.passes
    );

    let m = measure_planner(&config);
    let mut report = FigureReport::new(
        "Planner — mean per-query latency (us) and q/s, fixed vs oracle vs Auto",
        "series",
    );
    for baseline in &m.fixed {
        report.push_x(&baseline.name);
        report.push_cell(
            "mean (us)",
            format!("{:.1}", baseline.mean.as_secs_f64() * 1e6),
        );
        report.push_cell("q/s", format!("{:.0}", baseline.qps()));
    }
    report.push_x("oracle");
    report.push_cell(
        "mean (us)",
        format!("{:.1}", m.oracle_mean.as_secs_f64() * 1e6),
    );
    report.push_cell(
        "q/s",
        format!("{:.0}", 1.0 / m.oracle_mean.as_secs_f64().max(1e-12)),
    );
    report.push_x("AUTO");
    report.push_cell(
        "mean (us)",
        format!("{:.1}", m.auto_mean.as_secs_f64() * 1e6),
    );
    report.push_cell("q/s", format!("{:.0}", m.auto_qps()));
    print!("{}", report.render());

    let worst = m.worst_fixed().clone();
    println!(
        "Auto vs oracle: {:.2}x (bar 1.15x); Auto vs worst fixed ({}): {:.2}x faster \
         (bar 1.5x); Auto q/s is {:.1}x the worst fixed q/s",
        m.auto_mean.as_secs_f64() / m.oracle_mean.as_secs_f64().max(1e-12),
        worst.name,
        worst.mean.as_secs_f64() / m.auto_mean.as_secs_f64().max(1e-12),
        m.auto_qps() / worst.qps().max(1e-12),
    );
    println!(
        "cache: {} hits / {} misses over {} queries; hit {:.1}us vs cold {:.1}us ({:.2}% — bar 10%)",
        m.cache_hits,
        m.cache_misses,
        m.total_auto_queries(),
        m.cache_hit_mean.as_secs_f64() * 1e6,
        m.cold_mean.as_secs_f64() * 1e6,
        m.cache_hit_mean.as_secs_f64() / m.cold_mean.as_secs_f64().max(1e-12) * 100.0,
    );
    println!(
        "decisions: {} buckets; {} exhaustive delegations; {} oracle disagreements",
        m.buckets, m.exhaustive_choices, m.agreement_failures
    );
    for (algorithm, reason, count) in &m.choices {
        println!("   {algorithm:<10} {reason:<10} {count}");
    }

    let artifact = m.to_json();
    std::fs::write(&out, artifact.render()).expect("planner artifact is writable");
    let persisted = std::fs::read_to_string(&out).expect("planner artifact re-reads");
    let parsed = Json::parse(&persisted).expect("planner artifact re-parses as JSON");
    if let Err(violation) = validate_planner_report(&parsed) {
        eprintln!("{out} failed validation: {violation}");
        std::process::exit(1);
    }
    println!("wrote {out} — parsed back and planner acceptance bars verified");
}

fn fmt_bytes(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1u64 << 20) as f64)
    } else if bytes >= 1 << 10 {
        format!("{:.1} KiB", bytes as f64 / (1u64 << 10) as f64)
    } else {
        format!("{bytes} B")
    }
}

// ---------------------------------------------------------------------------
// Ablations beyond the paper's figures
// ---------------------------------------------------------------------------

fn ablation(options: &Options) {
    let dataset = DatasetConfig::gowalla_like(options.scale.gowalla_users).generate();

    let mut landmarks_report = FigureReport::new(
        "Ablation — run-time (ms) vs number of landmarks M (gowalla-like)",
        "M",
    );
    for m_landmarks in [2usize, 4, 8, 16, 32] {
        landmarks_report.push_x(m_landmarks);
        let bench = BenchDataset::from_dataset(
            "gowalla-like",
            dataset.clone(),
            options.scale.queries,
            |b| b.landmarks(m_landmarks),
        );
        for algorithm in [Algorithm::Tsa, Algorithm::Ais] {
            let m = measure_algorithm(
                &bench.engine,
                algorithm,
                &bench.workload.users,
                DEFAULT_K,
                DEFAULT_ALPHA,
            );
            landmarks_report.push_runtime(algorithm.name(), &m);
        }
    }
    print!("{}", landmarks_report.render());

    let mut selection_report = FigureReport::new(
        "Ablation — run-time (ms) vs landmark selection strategy (gowalla-like)",
        "strategy",
    );
    for (label, selection) in [
        ("random", LandmarkSelection::Random),
        ("farthest", LandmarkSelection::FarthestFirst),
        ("high-degree", LandmarkSelection::HighestDegree),
    ] {
        selection_report.push_x(label);
        let bench = BenchDataset::from_dataset(
            "gowalla-like",
            dataset.clone(),
            options.scale.queries,
            |b| b.landmark_selection(selection),
        );
        for algorithm in [Algorithm::Tsa, Algorithm::Ais] {
            let m = measure_algorithm(
                &bench.engine,
                algorithm,
                &bench.workload.users,
                DEFAULT_K,
                DEFAULT_ALPHA,
            );
            selection_report.push_runtime(algorithm.name(), &m);
        }
    }
    print!("{}", selection_report.render());
}
