//! Benchmark-scale dataset construction.

use ssrq_core::{EngineBuilder, GeoSocialDataset, GeoSocialEngine};
use ssrq_data::{DatasetConfig, QueryWorkload};

/// Experiment scale: how large the synthetic stand-ins for the paper's
/// datasets are and how many queries each measurement averages over.
///
/// The paper uses Gowalla (196K users), Foursquare (1.88M) and Twitter-SG
/// (124K) with 1,000 queries per measurement; the default benchmark scale is
/// reduced so the full suite completes in minutes, and can be raised with
/// `--scale` / [`Scale::full`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Users in the Gowalla-like dataset.
    pub gowalla_users: usize,
    /// Users in the Foursquare-like dataset.
    pub foursquare_users: usize,
    /// Users in the Twitter-like dataset.
    pub twitter_users: usize,
    /// Queries per measurement point.
    pub queries: usize,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            gowalla_users: 20_000,
            foursquare_users: 60_000,
            twitter_users: 12_000,
            queries: 100,
        }
    }
}

impl Scale {
    /// A quick scale for smoke runs and the Criterion benches.
    pub fn quick() -> Self {
        Scale {
            gowalla_users: 6_000,
            foursquare_users: 15_000,
            twitter_users: 4_000,
            queries: 25,
        }
    }

    /// A scale closer to the paper's datasets (slow: minutes per figure).
    pub fn full() -> Self {
        Scale {
            gowalla_users: 100_000,
            foursquare_users: 400_000,
            twitter_users: 60_000,
            queries: 300,
        }
    }

    /// Multiplies all dataset sizes by `factor` (queries unchanged).
    pub fn scaled_by(mut self, factor: f64) -> Self {
        let f = factor.max(0.01);
        self.gowalla_users = ((self.gowalla_users as f64) * f) as usize;
        self.foursquare_users = ((self.foursquare_users as f64) * f) as usize;
        self.twitter_users = ((self.twitter_users as f64) * f) as usize;
        self
    }
}

/// A fully built benchmark dataset: the generated data, the query engine and
/// a reusable workload of query users.
pub struct BenchDataset {
    /// Human-readable label ("gowalla-like", ...).
    pub name: String,
    /// The query engine with all default indexes built.
    pub engine: GeoSocialEngine,
    /// The query workload drawn for this dataset.
    pub workload: QueryWorkload,
}

impl BenchDataset {
    /// Builds a benchmark dataset from a generator configuration.
    /// `configure` customizes the [`EngineBuilder`] (pass the identity
    /// closure `|b| b` for defaults).
    pub fn from_config(
        config: DatasetConfig,
        queries: usize,
        configure: impl FnOnce(EngineBuilder) -> EngineBuilder,
    ) -> Self {
        let name = config.name.clone();
        let dataset = config.generate();
        Self::from_dataset(name, dataset, queries, configure)
    }

    /// Builds a benchmark dataset from an already-generated dataset.
    /// `configure` customizes the [`EngineBuilder`] (pass the identity
    /// closure `|b| b` for defaults).
    pub fn from_dataset(
        name: impl Into<String>,
        dataset: GeoSocialDataset,
        queries: usize,
        configure: impl FnOnce(EngineBuilder) -> EngineBuilder,
    ) -> Self {
        let engine = configure(GeoSocialEngine::builder(dataset))
            .build()
            .expect("engine builds");
        let workload = QueryWorkload::generate(engine.dataset(), queries, 0xBEEF);
        BenchDataset {
            name: name.into(),
            engine,
            workload,
        }
    }

    /// The Gowalla-like dataset at the given scale.
    pub fn gowalla(scale: Scale) -> Self {
        Self::from_config(
            DatasetConfig::gowalla_like(scale.gowalla_users),
            scale.queries,
            |b| b,
        )
    }

    /// The Foursquare-like dataset at the given scale.
    pub fn foursquare(scale: Scale) -> Self {
        Self::from_config(
            DatasetConfig::foursquare_like(scale.foursquare_users),
            scale.queries,
            |b| b,
        )
    }

    /// The Twitter-like (high-degree) dataset at the given scale.
    pub fn twitter(scale: Scale) -> Self {
        Self::from_config(
            DatasetConfig::twitter_like(scale.twitter_users),
            scale.queries,
            |b| b,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_compose() {
        let s = Scale::default().scaled_by(0.5);
        assert_eq!(s.gowalla_users, 10_000);
        assert!(Scale::quick().gowalla_users < Scale::default().gowalla_users);
        assert!(Scale::full().foursquare_users > Scale::default().foursquare_users);
    }

    #[test]
    fn bench_dataset_builds_and_draws_a_workload() {
        let scale = Scale {
            gowalla_users: 800,
            foursquare_users: 800,
            twitter_users: 800,
            queries: 10,
        };
        let bench = BenchDataset::gowalla(scale);
        assert_eq!(bench.name, "gowalla-like");
        assert_eq!(bench.workload.len(), 10);
        assert_eq!(bench.engine.dataset().user_count(), 800);
    }
}
