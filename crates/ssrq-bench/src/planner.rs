//! Adaptive-planner benchmark behind `experiments -- planner` (persisted
//! to `BENCH_planner.json`): `Algorithm::Auto` versus every fixed
//! index-free algorithm versus the per-query oracle on a mixed, repeating
//! workload.
//!
//! The workload deliberately mixes query shapes (unfiltered, selective
//! and wide spatial windows, score thresholds, exclusion lists) so the
//! planner sees several signal buckets, and repeats the same requests for
//! several passes so the churn-aware hot-result cache gets to serve
//! steady-state hits — the regime the planner is designed for.  Three
//! acceptance bars are checked on the re-parsed artifact:
//!
//! 1. Auto's mean per-query latency is within 1.15x of the per-query
//!    oracle (the min over the fixed algorithms, measured cold).
//! 2. Auto is at least 1.5x faster than the worst fixed algorithm.
//! 3. A cache hit costs under 10% of a cold Auto query.
//!
//! Every Auto answer is additionally compared against the stored
//! exhaustive result of the identical request — the planner may only ever
//! trade time, never correctness.

use crate::json::Json;
use ssrq_core::{Algorithm, GeoSocialEngine, QueryRequest, QueryResult};
use ssrq_data::{DatasetConfig, QueryWorkload};
use ssrq_spatial::{Point, Rect};
use std::time::Duration;

/// The fixed index-free line-up Auto is raced against.  `EXH` anchors the
/// "worst fixed" end; the remaining seven are exactly the planner's
/// index-free candidate set.
pub const PLANNER_FIXED_ALGORITHMS: [Algorithm; 8] = [
    Algorithm::Exhaustive,
    Algorithm::Sfa,
    Algorithm::Spa,
    Algorithm::Tsa,
    Algorithm::TsaQc,
    Algorithm::AisBid,
    Algorithm::AisMinus,
    Algorithm::Ais,
];

/// Workload shape of one planner benchmark run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannerBenchConfig {
    /// Users in the gowalla-like dataset.
    pub users: usize,
    /// Distinct query templates (shapes cycle: plain, wide window,
    /// selective window, score threshold, exclusion list).
    pub distinct_queries: usize,
    /// Passes over the distinct templates; passes beyond the first repeat
    /// identical requests, so `(passes - 1) / passes` of the Auto workload
    /// is eligible for hot-cache hits.
    pub passes: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Default for PlannerBenchConfig {
    fn default() -> Self {
        PlannerBenchConfig {
            users: 4_000,
            distinct_queries: 80,
            passes: 5,
            seed: 0x9AB,
        }
    }
}

impl PlannerBenchConfig {
    /// Scales the dataset size by `factor` (clamped to a floor where the
    /// generated graph still has interesting structure).
    pub fn scaled_by(mut self, factor: f64) -> Self {
        self.users = (((self.users as f64) * factor.max(0.001)) as usize).max(300);
        self
    }
}

/// One fixed-algorithm baseline over the distinct workload.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedBaseline {
    /// Algorithm name (`EXH`, `SFA`, ...).
    pub name: String,
    /// Mean per-query latency, measured cold with a reused context.
    pub mean: Duration,
}

impl FixedBaseline {
    /// Queries/second implied by the mean latency.
    pub fn qps(&self) -> f64 {
        1.0 / self.mean.as_secs_f64().max(1e-12)
    }
}

/// One planner benchmark run: the fixed baselines, the per-query oracle,
/// and Auto's steady-state behaviour (choices, cache traffic, exactness).
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerMeasurement {
    /// Users in the dataset.
    pub users: usize,
    /// Distinct query templates.
    pub distinct_queries: usize,
    /// Passes over the templates in the Auto run.
    pub passes: usize,
    /// Every fixed baseline, in [`PLANNER_FIXED_ALGORITHMS`] order.
    pub fixed: Vec<FixedBaseline>,
    /// Mean of the per-query minima over the fixed algorithms — the
    /// latency of a clairvoyant per-query planner without a cache.
    pub oracle_mean: Duration,
    /// Mean Auto latency over the full repeated workload (cold + hot).
    pub auto_mean: Duration,
    /// Mean Auto latency of cache misses only.
    pub cold_mean: Duration,
    /// Mean latency of a hot-cache hit.
    pub cache_hit_mean: Duration,
    /// Hits served by the hot-result cache during the Auto run.
    pub cache_hits: u64,
    /// Cache lookups that missed (each one is a planner decision).
    pub cache_misses: u64,
    /// `(algorithm, reason, count)` of every planner decision.
    pub choices: Vec<(String, String, u64)>,
    /// Signal buckets the workload exercised.
    pub buckets: usize,
    /// Times the planner delegated to `EXH` (must be zero — exhaustive
    /// scoring is never a candidate).
    pub exhaustive_choices: u64,
    /// Auto answers that disagreed with the stored exhaustive result of
    /// the identical request (must be zero).
    pub agreement_failures: usize,
}

impl PlannerMeasurement {
    /// Total Auto queries executed.
    pub fn total_auto_queries(&self) -> usize {
        self.distinct_queries * self.passes
    }

    /// The slowest fixed baseline.
    pub fn worst_fixed(&self) -> &FixedBaseline {
        self.fixed
            .iter()
            .max_by(|a, b| a.mean.cmp(&b.mean))
            .expect("at least one fixed baseline")
    }

    /// The fastest fixed baseline.
    pub fn best_fixed(&self) -> &FixedBaseline {
        self.fixed
            .iter()
            .min_by(|a, b| a.mean.cmp(&b.mean))
            .expect("at least one fixed baseline")
    }

    /// Queries/second of the Auto run.
    pub fn auto_qps(&self) -> f64 {
        1.0 / self.auto_mean.as_secs_f64().max(1e-12)
    }

    /// The artifact body persisted as `BENCH_planner.json`.
    pub fn to_json(&self) -> Json {
        let micros = |d: Duration| Json::Num(d.as_secs_f64() * 1e6);
        Json::Obj(vec![
            ("experiment".into(), Json::str("planner")),
            ("dataset".into(), Json::str("gowalla-like")),
            ("users".into(), Json::num(self.users)),
            ("distinct_queries".into(), Json::num(self.distinct_queries)),
            ("passes".into(), Json::num(self.passes)),
            (
                "total_auto_queries".into(),
                Json::num(self.total_auto_queries()),
            ),
            (
                "fixed".into(),
                Json::Arr(
                    self.fixed
                        .iter()
                        .map(|b| {
                            Json::Obj(vec![
                                ("algorithm".into(), Json::str(b.name.clone())),
                                ("mean_us".into(), micros(b.mean)),
                                ("qps".into(), Json::Num(b.qps())),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "worst_fixed".into(),
                Json::str(self.worst_fixed().name.clone()),
            ),
            (
                "best_fixed".into(),
                Json::str(self.best_fixed().name.clone()),
            ),
            ("oracle_mean_us".into(), micros(self.oracle_mean)),
            ("auto_mean_us".into(), micros(self.auto_mean)),
            ("auto_qps".into(), Json::Num(self.auto_qps())),
            ("cold_mean_us".into(), micros(self.cold_mean)),
            ("cache_hit_mean_us".into(), micros(self.cache_hit_mean)),
            ("cache_hits".into(), Json::Num(self.cache_hits as f64)),
            ("cache_misses".into(), Json::Num(self.cache_misses as f64)),
            (
                "choices".into(),
                Json::Arr(
                    self.choices
                        .iter()
                        .map(|(algorithm, reason, count)| {
                            Json::Obj(vec![
                                ("algorithm".into(), Json::str(algorithm.clone())),
                                ("reason".into(), Json::str(reason.clone())),
                                ("count".into(), Json::Num(*count as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
            ("buckets".into(), Json::num(self.buckets)),
            (
                "exhaustive_choices".into(),
                Json::Num(self.exhaustive_choices as f64),
            ),
            (
                "agreement_failures".into(),
                Json::num(self.agreement_failures),
            ),
        ])
    }
}

/// A mixed-shape request for workload slot `i`: the shapes cycle so the
/// planner sees several signal buckets and every request mechanism
/// (windows, thresholds, exclusions) is part of the race.
fn mixed_request(i: usize, user: u32, user_count: u32) -> QueryRequest {
    let base = QueryRequest::for_user(user).k(20).alpha(0.3);
    match i % 5 {
        0 => base.build(),
        // A wide window (~20% of the unit square): spatial class "wide".
        1 => base
            .within(Rect::new(Point::new(0.2, 0.2), Point::new(0.65, 0.65)))
            .build(),
        // A selective window (4% of the unit square): class "selective".
        2 => base
            .within(Rect::new(Point::new(0.4, 0.4), Point::new(0.6, 0.6)))
            .build(),
        3 => base.max_score(0.7).build(),
        _ => {
            let a = (user + 1) % user_count;
            let b = (user + 7) % user_count;
            base.exclude([a, b].into_iter().filter(|&u| u != user))
                .build()
        }
    }
    .expect("benchmark parameters are valid")
}

/// Races `Algorithm::Auto` against every fixed index-free algorithm on a
/// mixed workload repeated for `config.passes` passes.
///
/// Fixed baselines and the per-query oracle are measured cold (one reused
/// context, no cache — fixed algorithms never touch the planner).  The
/// Auto run uses a cloned engine, whose fresh planner starts with no
/// feedback and an empty cache, so the measurement covers the full
/// explore-then-converge trajectory plus steady-state cache hits.  Every
/// Auto answer is checked against the stored exhaustive result.
///
/// # Panics
///
/// If the engine fails to build or any benchmark query fails — both mean
/// the harness itself is broken.
pub fn measure_planner(config: &PlannerBenchConfig) -> PlannerMeasurement {
    assert!(config.distinct_queries > 0, "nothing to measure");
    assert!(config.passes >= 2, "need repeats for the cache to matter");
    let dataset = DatasetConfig::gowalla_like(config.users).generate();
    let user_count = dataset.user_count() as u32;
    let engine = GeoSocialEngine::builder(dataset)
        .build()
        .expect("benchmark engine builds");
    let workload = QueryWorkload::generate(engine.dataset(), config.distinct_queries, config.seed);
    let requests: Vec<QueryRequest> = workload
        .users
        .iter()
        .enumerate()
        .map(|(i, &user)| mixed_request(i, user, user_count))
        .collect();

    // Fixed baselines + the per-query oracle, all cold.
    let mut ctx = engine.make_context();
    let mut per_query_min = vec![Duration::MAX; requests.len()];
    let mut oracle_results: Vec<QueryResult> = Vec::with_capacity(requests.len());
    let mut fixed = Vec::new();
    for algorithm in PLANNER_FIXED_ALGORITHMS {
        let mut total = Duration::ZERO;
        for (i, request) in requests.iter().enumerate() {
            let result = engine
                .run_with(&request.clone().with_algorithm(algorithm), &mut ctx)
                .expect("fixed benchmark query succeeds");
            total += result.stats.runtime;
            per_query_min[i] = per_query_min[i].min(result.stats.runtime);
            if algorithm == Algorithm::Exhaustive {
                oracle_results.push(result);
            }
        }
        fixed.push(FixedBaseline {
            name: algorithm.name().to_owned(),
            mean: total / requests.len() as u32,
        });
    }
    let oracle_mean = per_query_min.iter().sum::<Duration>() / requests.len() as u32;

    // The Auto run on a cloned engine: fresh planner, empty cache.
    let auto_engine = engine.clone();
    let auto_requests: Vec<QueryRequest> = requests
        .iter()
        .map(|r| r.clone().with_algorithm(Algorithm::Auto))
        .collect();
    let mut ctx = auto_engine.make_context();
    let mut auto_total = Duration::ZERO;
    let mut hit_total = Duration::ZERO;
    let mut miss_total = Duration::ZERO;
    let mut hits = 0u64;
    let mut misses = 0u64;
    let mut agreement_failures = 0usize;
    for _pass in 0..config.passes {
        for (i, request) in auto_requests.iter().enumerate() {
            let result = auto_engine
                .run_with(request, &mut ctx)
                .expect("Auto benchmark query succeeds");
            auto_total += result.stats.runtime;
            // A hot-cache hit replaces the stats wholesale: exactly one
            // recorded hit and no search work at all.
            if result.stats.cache_hits == 1 && result.stats.vertex_pops == 0 {
                hits += 1;
                hit_total += result.stats.runtime;
            } else {
                misses += 1;
                miss_total += result.stats.runtime;
            }
            if !result.same_users_and_scores(&oracle_results[i], 1e-9) {
                agreement_failures += 1;
            }
        }
    }
    let snapshot = auto_engine.planner().snapshot();
    let total_auto = (config.passes * requests.len()) as u32;

    PlannerMeasurement {
        users: config.users,
        distinct_queries: requests.len(),
        passes: config.passes,
        fixed,
        oracle_mean,
        auto_mean: auto_total / total_auto,
        cold_mean: miss_total / (misses.max(1) as u32),
        cache_hit_mean: hit_total / (hits.max(1) as u32),
        cache_hits: snapshot.cache_hits,
        cache_misses: snapshot.cache_misses,
        choices: snapshot
            .choices
            .iter()
            .map(|(algorithm, reason, count)| (algorithm.clone(), (*reason).to_owned(), *count))
            .collect(),
        buckets: snapshot.buckets,
        exhaustive_choices: snapshot.choices_for(Algorithm::Exhaustive),
        agreement_failures,
    }
}

/// Validates a re-parsed `BENCH_planner.json`: structural invariants
/// (exactness, no exhaustive delegation, real cache traffic) and the three
/// acceptance bars — Auto within 1.15x of the per-query oracle, at least
/// 1.5x faster than the worst fixed algorithm, and cache hits under 10%
/// of a cold query.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate_planner_report(report: &Json) -> Result<(), String> {
    if report.get("experiment").and_then(Json::as_str) != Some("planner") {
        return Err("report is not a planner artifact".into());
    }
    let positive = |key: &str| -> Result<f64, String> {
        let value = report
            .get(key)
            .and_then(Json::as_f64)
            .ok_or(format!("report lacks a numeric `{key}`"))?;
        if !value.is_finite() || value <= 0.0 {
            return Err(format!("`{key}` must be positive, got {value}"));
        }
        Ok(value)
    };
    let distinct = positive("distinct_queries")? as usize;
    let passes = positive("passes")? as usize;
    if passes < 2 {
        return Err("a single pass never exercises the hot-result cache".into());
    }
    let total = positive("total_auto_queries")? as usize;
    if total != distinct * passes {
        return Err(format!(
            "total_auto_queries {total} is not distinct_queries x passes ({distinct} x {passes})"
        ));
    }
    positive("users")?;

    let fixed = report
        .get("fixed")
        .and_then(Json::as_array)
        .ok_or("report lacks a `fixed` baseline array")?;
    if fixed.len() < 2 {
        return Err("fewer than two fixed baselines — nothing to race".into());
    }
    let mut worst_fixed_us = 0.0f64;
    let mut saw_exhaustive = false;
    for baseline in fixed {
        let name = baseline
            .get("algorithm")
            .and_then(Json::as_str)
            .ok_or("a fixed baseline lacks its algorithm name")?;
        let mean = baseline
            .get("mean_us")
            .and_then(Json::as_f64)
            .ok_or(format!("baseline {name} lacks `mean_us`"))?;
        if !mean.is_finite() || mean <= 0.0 {
            return Err(format!("baseline {name} has non-positive mean {mean}"));
        }
        worst_fixed_us = worst_fixed_us.max(mean);
        saw_exhaustive |= name == Algorithm::Exhaustive.name();
    }
    if !saw_exhaustive {
        return Err("the fixed line-up must include the exhaustive baseline".into());
    }

    let oracle_us = positive("oracle_mean_us")?;
    let auto_us = positive("auto_mean_us")?;
    let cold_us = positive("cold_mean_us")?;
    let hit_us = positive("cache_hit_mean_us")?;
    let cache_hits = positive("cache_hits")? as u64;
    // `(passes - 1) / passes` of the workload is repeats; require at least
    // half of those to have been served hot, so the cache columns describe
    // real traffic rather than a handful of lucky lookups.
    if (cache_hits as usize) < (passes - 1) * distinct / 2 {
        return Err(format!(
            "only {cache_hits} cache hits for {} repeated requests",
            (passes - 1) * distinct
        ));
    }
    if report.get("agreement_failures").and_then(Json::as_usize) != Some(0) {
        return Err("an Auto answer disagreed with the exhaustive oracle".into());
    }
    if report.get("exhaustive_choices").and_then(Json::as_usize) != Some(0) {
        return Err("the planner delegated to exhaustive scoring".into());
    }
    let choices = report
        .get("choices")
        .and_then(Json::as_array)
        .ok_or("report lacks a `choices` breakdown")?;
    if choices.is_empty() {
        return Err("the planner recorded no decisions".into());
    }

    if auto_us > 1.15 * oracle_us {
        return Err(format!(
            "Auto mean {auto_us:.1}us breaches 1.15x the per-query oracle ({oracle_us:.1}us)"
        ));
    }
    if worst_fixed_us < 1.5 * auto_us {
        return Err(format!(
            "Auto mean {auto_us:.1}us is not 1.5x faster than the worst fixed \
             algorithm ({worst_fixed_us:.1}us)"
        ));
    }
    if hit_us >= 0.10 * cold_us {
        return Err(format!(
            "a cache hit ({hit_us:.1}us) costs 10% or more of a cold query ({cold_us:.1}us)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_measurement() -> PlannerMeasurement {
        PlannerMeasurement {
            users: 1_000,
            distinct_queries: 40,
            passes: 5,
            fixed: vec![
                FixedBaseline {
                    name: "EXH".into(),
                    mean: Duration::from_micros(900),
                },
                FixedBaseline {
                    name: "AIS".into(),
                    mean: Duration::from_micros(120),
                },
            ],
            oracle_mean: Duration::from_micros(100),
            auto_mean: Duration::from_micros(60),
            cold_mean: Duration::from_micros(210),
            cache_hit_mean: Duration::from_micros(3),
            cache_hits: 158,
            cache_misses: 42,
            choices: vec![
                ("AIS".into(), "heuristic".into(), 6),
                ("AIS".into(), "feedback".into(), 30),
                ("SPA".into(), "explore".into(), 6),
            ],
            buckets: 6,
            exhaustive_choices: 0,
            agreement_failures: 0,
        }
    }

    #[test]
    fn a_measurement_renders_to_a_validating_report() {
        let m = sample_measurement();
        assert_eq!(m.worst_fixed().name, "EXH");
        assert_eq!(m.best_fixed().name, "AIS");
        assert_eq!(m.total_auto_queries(), 200);
        let reparsed = Json::parse(&m.to_json().render()).expect("report re-parses");
        validate_planner_report(&reparsed).expect("report validates");
    }

    #[test]
    fn validation_enforces_the_acceptance_bars() {
        fn report_with(patch: impl FnOnce(&mut PlannerMeasurement)) -> Json {
            let mut m = sample_measurement();
            patch(&mut m);
            Json::parse(&m.to_json().render()).expect("report re-parses")
        }

        assert!(validate_planner_report(&Json::Obj(vec![])).is_err());

        // Auto slower than 1.15x the oracle.
        let slow = report_with(|m| m.auto_mean = Duration::from_micros(200));
        let error = validate_planner_report(&slow).unwrap_err();
        assert!(error.contains("1.15x"), "unexpected error: {error}");

        // The worst fixed algorithm not beaten by 1.5x.
        let close = report_with(|m| {
            m.fixed[0].mean = Duration::from_micros(70);
            m.fixed[1].mean = Duration::from_micros(70);
        });
        let error = validate_planner_report(&close).unwrap_err();
        assert!(error.contains("1.5x"), "unexpected error: {error}");

        // Cache hits as expensive as cold queries.
        let heavy = report_with(|m| m.cache_hit_mean = Duration::from_micros(50));
        let error = validate_planner_report(&heavy).unwrap_err();
        assert!(error.contains("10%"), "unexpected error: {error}");

        // Any disagreement with the oracle is fatal.
        let wrong = report_with(|m| m.agreement_failures = 1);
        let error = validate_planner_report(&wrong).unwrap_err();
        assert!(error.contains("disagreed"), "unexpected error: {error}");

        // The planner must never delegate to exhaustive scoring.
        let exhaustive = report_with(|m| m.exhaustive_choices = 2);
        let error = validate_planner_report(&exhaustive).unwrap_err();
        assert!(error.contains("exhaustive"), "unexpected error: {error}");

        // Too few hits means the cache columns are noise.
        let idle = report_with(|m| m.cache_hits = 3);
        let error = validate_planner_report(&idle).unwrap_err();
        assert!(error.contains("cache hits"), "unexpected error: {error}");
    }

    #[test]
    fn a_small_end_to_end_run_is_exact_and_serves_hits() {
        let config = PlannerBenchConfig {
            users: 400,
            distinct_queries: 10,
            passes: 3,
            seed: 7,
        };
        let m = measure_planner(&config);
        assert_eq!(m.distinct_queries, 10);
        assert_eq!(m.fixed.len(), PLANNER_FIXED_ALGORITHMS.len());
        assert_eq!(m.agreement_failures, 0);
        assert_eq!(m.exhaustive_choices, 0);
        assert!(m.cache_hits > 0, "repeated passes never hit the cache");
        assert!(m.auto_mean > Duration::ZERO);
        assert!(m.oracle_mean <= m.worst_fixed().mean);
        // The artifact the run would persist must at least round-trip.
        let reparsed = Json::parse(&m.to_json().render()).expect("artifact re-parses");
        assert_eq!(
            reparsed.get("experiment").and_then(Json::as_str),
            Some("planner")
        );
    }

    #[test]
    fn scaling_keeps_a_usable_dataset_floor() {
        let tiny = PlannerBenchConfig::default().scaled_by(0.0001);
        assert_eq!(tiny.users, 300);
        let double = PlannerBenchConfig::default().scaled_by(2.0);
        assert_eq!(double.users, 8_000);
    }
}
