//! Shared harness for the SSRQ experiment suite.
//!
//! The `experiments` binary and the Criterion benches both build on the
//! helpers here: dataset presets at benchmark scale, workload execution,
//! aggregation of run-time / pop-ratio measurements, and plain-text table
//! rendering that mirrors the rows and series of the paper's tables and
//! figures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod json;
pub mod measure;
pub mod memory;
pub mod obs;
pub mod planner;
pub mod report;
pub mod rpc;
pub mod scale;
pub mod sharding;
pub mod suite;

pub use json::Json;
pub use measure::{
    max_result_hops, measure_algorithm, measure_batch_qps, measure_first_result, measure_prefix,
    measure_sequential_qps, measure_throughput, AggregateMeasurement, LatencyMeasurement,
    ThroughputMeasurement,
};
pub use memory::{measure_memory, single_engine_breakdown, MemoryMeasurement};
pub use obs::{calibrate_metric_op, measure_obs, validate_obs_report, ObsMeasurement};
pub use planner::{
    measure_planner, validate_planner_report, FixedBaseline, PlannerBenchConfig,
    PlannerMeasurement, PLANNER_FIXED_ALGORITHMS,
};
pub use report::FigureReport;
pub use rpc::{
    launch_cluster, measure_rpc, sibling_shard_server, validate_rpc_report, DeploymentConfig,
    RpcMeasurement, ShardProcess,
};
pub use scale::{
    ais_budget_bytes, check_ais_budget, run_scale_sweep, validate_scale_report, ScaleSweepConfig,
};
pub use sharding::{measure_sharding, ShardingMeasurement};
pub use suite::{BenchDataset, Scale};
