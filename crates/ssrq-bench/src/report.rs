//! Plain-text rendering of experiment results in the shape of the paper's
//! tables and figures (one row per x-axis value, one column per series).

use crate::AggregateMeasurement;

/// A figure-like result table: a named x-axis, one named series per
/// algorithm/variant, and one measurement per (x, series) cell.
#[derive(Debug, Clone, Default)]
pub struct FigureReport {
    /// Figure identifier, e.g. "Figure 8(a) — run-time vs k (gowalla-like)".
    pub title: String,
    /// Label of the x-axis (e.g. "k", "alpha", "s").
    pub x_label: String,
    /// x-axis values, formatted.
    pub x_values: Vec<String>,
    /// Series: (name, one cell per x value).
    pub series: Vec<(String, Vec<String>)>,
}

impl FigureReport {
    /// Creates an empty report.
    pub fn new(title: impl Into<String>, x_label: impl Into<String>) -> Self {
        FigureReport {
            title: title.into(),
            x_label: x_label.into(),
            ..FigureReport::default()
        }
    }

    /// Appends an x-axis value.
    pub fn push_x(&mut self, value: impl ToString) {
        self.x_values.push(value.to_string());
    }

    /// Appends a cell to the named series (creating the series on first
    /// use).
    pub fn push_cell(&mut self, series: &str, value: impl ToString) {
        if let Some((_, cells)) = self.series.iter_mut().find(|(name, _)| name == series) {
            cells.push(value.to_string());
        } else {
            self.series
                .push((series.to_string(), vec![value.to_string()]));
        }
    }

    /// Convenience: record the run-time (ms) of a measurement.
    pub fn push_runtime(&mut self, series: &str, m: &AggregateMeasurement) {
        self.push_cell(series, format!("{:.3}", m.avg_millis()));
    }

    /// Convenience: record the pop ratio of a measurement.
    pub fn push_pop_ratio(&mut self, series: &str, m: &AggregateMeasurement) {
        self.push_cell(series, format!("{:.4}", m.pop_ratio));
    }

    /// Renders the report as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("\n## {}\n\n", self.title));
        // Header.
        out.push_str(&format!("{:<12}", self.x_label));
        for (name, _) in &self.series {
            out.push_str(&format!(" {:>12}", name));
        }
        out.push('\n');
        out.push_str(&"-".repeat(12 + 13 * self.series.len()));
        out.push('\n');
        for (row, x) in self.x_values.iter().enumerate() {
            out.push_str(&format!("{:<12}", x));
            for (_, cells) in &self.series {
                let cell = cells.get(row).map(String::as_str).unwrap_or("-");
                out.push_str(&format!(" {:>12}", cell));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn sample_measurement() -> AggregateMeasurement {
        AggregateMeasurement {
            queries: 10,
            avg_runtime: Duration::from_micros(1500),
            pop_ratio: 0.0421,
            avg_evaluated: 12.0,
            avg_distance_calls: 15.0,
        }
    }

    #[test]
    fn report_renders_rows_and_columns() {
        let mut report = FigureReport::new("Figure X", "k");
        for k in [10, 20] {
            report.push_x(k);
            report.push_runtime("SFA", &sample_measurement());
            report.push_pop_ratio("AIS", &sample_measurement());
        }
        let text = report.render();
        assert!(text.contains("Figure X"));
        assert!(text.contains("SFA"));
        assert!(text.contains("AIS"));
        assert!(text.contains("1.500"));
        assert!(text.contains("0.0421"));
        assert!(text.matches('\n').count() >= 5);
    }

    #[test]
    fn missing_cells_render_as_dashes() {
        let mut report = FigureReport::new("t", "x");
        report.push_x(1);
        report.push_cell("A", "v1");
        report.push_x(2);
        // Series B only has a value for the second row; series A misses it.
        report.push_cell("B", "v2");
        report.push_cell("B", "v3");
        let text = report.render();
        assert!(text.contains('-'));
    }
}
