//! Minimal hand-rolled JSON support: a value tree, a pretty writer, and a
//! recursive-descent parser.
//!
//! The bench crate persists the scale-sweep artifact (`BENCH_scale.json`)
//! without any external dependency; the parser exists so the harness — and
//! the CI smoke job — can re-read the artifact it just wrote and assert its
//! invariants (schema shape, occupancy-proportional AIS budgets) instead of
//! trusting the writer.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (stored as `f64`; integral values render without a dot).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved by the writer.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Convenience constructor for integer counts.
    pub fn num(value: usize) -> Json {
        Json::Num(value as f64)
    }

    /// Convenience constructor for strings.
    pub fn str(value: impl Into<String>) -> Json {
        Json::Str(value.into())
    }

    /// Member lookup on an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value rounded to `usize`, if this is a non-negative
    /// number.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if *n >= 0.0 => Some(n.round() as usize),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (2-space indent, trailing
    /// newline) suitable for a committed artifact diff.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => write_number(*n, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_string(key, out);
                    out.push_str(": ");
                    value.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document; rejects trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Infinity; a measurement artifact should never
        // contain one, but degrade to null rather than emit invalid output.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9e15 {
        out.push_str(&format!("{}", n as i64));
    } else {
        out.push_str(&format!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number `{text}` at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        let Some(&byte) = bytes.get(*pos) else {
            return Err("unterminated string".into());
        };
        *pos += 1;
        match byte {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&escape) = bytes.get(*pos) else {
                    return Err("unterminated escape".into());
                };
                *pos += 1;
                match escape {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let code = parse_hex4(bytes, pos)?;
                        // Combine a UTF-16 surrogate pair when one follows.
                        let scalar = if (0xD800..0xDC00).contains(&code)
                            && bytes[*pos..].starts_with(b"\\u")
                        {
                            let mark = *pos;
                            *pos += 2;
                            let low = parse_hex4(bytes, pos)?;
                            if (0xDC00..0xE000).contains(&low) {
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                *pos = mark;
                                code
                            }
                        } else {
                            code
                        };
                        out.push(char::from_u32(scalar).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("invalid escape `\\{}`", other as char)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at the byte we
                // consumed; multi-byte characters pass through unchanged.
                let start = *pos - 1;
                let mut end = *pos;
                while end < bytes.len() && bytes[end] & 0xC0 == 0x80 {
                    end += 1;
                }
                let chunk = std::str::from_utf8(&bytes[start..end]).map_err(|e| e.to_string())?;
                out.push_str(chunk);
                *pos = end;
            }
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let end = *pos + 4;
    if end > bytes.len() {
        return Err("truncated \\u escape".into());
    }
    let text = std::str::from_utf8(&bytes[*pos..end]).map_err(|e| e.to_string())?;
    let code = u32::from_str_radix(text, 16).map_err(|_| format!("invalid \\u escape `{text}`"))?;
    *pos = end;
    Ok(code)
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        members.push((key, parse_value(bytes, pos)?));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_a_nested_document() {
        let doc = Json::Obj(vec![
            ("name".into(), Json::str("scale sweep")),
            ("count".into(), Json::num(42)),
            ("ratio".into(), Json::Num(0.375)),
            ("flag".into(), Json::Bool(true)),
            ("missing".into(), Json::Null),
            (
                "items".into(),
                Json::Arr(vec![Json::num(1), Json::num(2), Json::Obj(vec![])]),
            ),
        ]);
        let text = doc.render();
        let parsed = Json::parse(&text).expect("round-trip parses");
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("count").and_then(Json::as_usize), Some(42));
        assert_eq!(parsed.get("ratio").and_then(Json::as_f64), Some(0.375));
        assert_eq!(
            parsed.get("items").and_then(Json::as_array).map(<[_]>::len),
            Some(3)
        );
    }

    #[test]
    fn integral_numbers_render_without_a_fraction() {
        assert_eq!(Json::num(1_000_000).render(), "1000000\n");
        assert_eq!(Json::Num(0.5).render(), "0.5\n");
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = Json::str("a \"quoted\"\tline\nwith \\ and unicode é");
        let parsed = Json::parse(&original.render()).unwrap();
        assert_eq!(parsed, original);
        let unicode = Json::parse(r#""Aé😀""#).unwrap();
        assert_eq!(unicode.as_str(), Some("Aé😀"));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("[1 2]").is_err());
        assert!(Json::parse("{\"a\": 1} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
        assert!(Json::parse("{a: 1}").is_err());
    }

    #[test]
    fn f64_round_trips_exactly() {
        for value in [1e-9, 0.1 + 0.2, f64::MAX / 3.0, 123_456.789] {
            let text = Json::Num(value).render();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.as_f64(), Some(value), "value {value} via {text}");
        }
    }
}
