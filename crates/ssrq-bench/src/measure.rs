//! Workload execution and measurement aggregation.

use ssrq_core::{Algorithm, GeoSocialEngine, QueryRequest, UserId};
use std::time::{Duration, Instant};

/// Aggregated measurements of one algorithm over one workload — the
/// quantities the paper plots: average run-time per query and the pop ratio
/// `|V_pop| / |V|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateMeasurement {
    /// Number of queries executed.
    pub queries: usize,
    /// Average wall-clock time per query.
    pub avg_runtime: Duration,
    /// Average pop ratio (settled graph vertices / graph size).
    pub pop_ratio: f64,
    /// Average number of users whose exact score was computed.
    pub avg_evaluated: f64,
    /// Average number of exact graph-distance computations.
    pub avg_distance_calls: f64,
}

impl AggregateMeasurement {
    /// Average run-time in milliseconds (the unit of the paper's plots).
    pub fn avg_millis(&self) -> f64 {
        self.avg_runtime.as_secs_f64() * 1e3
    }
}

/// Runs `algorithm` for every `(user, k, alpha)` combination of the given
/// users and parameters, returning the aggregate measurement.
pub fn measure_algorithm(
    engine: &GeoSocialEngine,
    algorithm: Algorithm,
    users: &[UserId],
    k: usize,
    alpha: f64,
) -> AggregateMeasurement {
    let mut total_runtime = Duration::ZERO;
    let mut total_pops = 0usize;
    let mut total_evaluated = 0usize;
    let mut total_distance_calls = 0usize;
    let graph_size = engine.dataset().user_count().max(1);
    let mut executed = 0usize;

    // One reused context for the whole workload: measurements reflect the
    // per-query work of the algorithm, not repeated scratch allocation.
    let mut ctx = engine.make_context();
    for request in requests_for(users, k, alpha, algorithm) {
        let result = match engine.run_with(&request, &mut ctx) {
            Ok(result) => result,
            Err(_) => continue,
        };
        executed += 1;
        total_runtime += result.stats.runtime;
        total_pops += result.stats.social_pops;
        total_evaluated += result.stats.evaluated_users;
        total_distance_calls += result.stats.distance_calls;
    }
    let executed_f = executed.max(1) as f64;
    AggregateMeasurement {
        queries: executed,
        avg_runtime: total_runtime / executed.max(1) as u32,
        pop_ratio: total_pops as f64 / executed_f / graph_size as f64,
        avg_evaluated: total_evaluated as f64 / executed_f,
        avg_distance_calls: total_distance_calls as f64 / executed_f,
    }
}

/// Throughput of one algorithm over one workload: sequential (one thread,
/// one reused context) versus batch execution across worker threads.
///
/// The figure future PRs have to beat: queries/second at a given thread
/// count, measured over identical query sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThroughputMeasurement {
    /// Number of queries each mode executed.
    pub queries: usize,
    /// Worker threads used by the batch mode.
    pub threads: usize,
    /// Queries per second, sequential execution with a reused context.
    pub sequential_qps: f64,
    /// Queries per second through `run_batch_with_threads`.
    pub batch_qps: f64,
}

impl ThroughputMeasurement {
    /// Batch speed-up over sequential execution.
    pub fn speedup(&self) -> f64 {
        if self.sequential_qps > 0.0 {
            self.batch_qps / self.sequential_qps
        } else {
            0.0
        }
    }
}

/// Measures sequential vs batch throughput of `algorithm` over the workload
/// `(users, k, alpha)` with the given worker-thread count.
///
/// Both modes run the identical query list.  Failed queries (e.g. a
/// missing auxiliary index) are excluded from the success counts, but
/// their (typically tiny) validation time is part of each mode's clock —
/// qps figures are only meaningful for workloads that mostly succeed.
///
/// To compare several thread counts without re-timing the sequential pass
/// each time, use [`measure_sequential_qps`] + [`measure_batch_qps`]
/// directly.
pub fn measure_throughput(
    engine: &GeoSocialEngine,
    algorithm: Algorithm,
    users: &[UserId],
    k: usize,
    alpha: f64,
    threads: usize,
) -> ThroughputMeasurement {
    let batch = requests_for(users, k, alpha, algorithm);
    let (executed, sequential_qps) = time_sequential(engine, &batch);
    let (batch_ok, batch_qps) = time_batch(engine, &batch, threads);
    // Queries are deterministic, so the two modes must succeed on exactly
    // the same subset; a mismatch would mean the parallel path changed
    // outcomes, which should fail loudly rather than skew the figures.
    assert_eq!(
        executed, batch_ok,
        "sequential and batch execution disagreed on query outcomes"
    );
    ThroughputMeasurement {
        queries: executed,
        threads,
        sequential_qps,
        batch_qps,
    }
}

/// Queries/second of one-thread execution with a reused context, returned
/// with the number of successful queries.
pub fn measure_sequential_qps(
    engine: &GeoSocialEngine,
    algorithm: Algorithm,
    users: &[UserId],
    k: usize,
    alpha: f64,
) -> (usize, f64) {
    time_sequential(engine, &requests_for(users, k, alpha, algorithm))
}

/// Queries/second of `run_batch_with_threads`, returned with the number
/// of successful queries.
pub fn measure_batch_qps(
    engine: &GeoSocialEngine,
    algorithm: Algorithm,
    users: &[UserId],
    k: usize,
    alpha: f64,
    threads: usize,
) -> (usize, f64) {
    time_batch(engine, &requests_for(users, k, alpha, algorithm), threads)
}

fn requests_for(users: &[UserId], k: usize, alpha: f64, algorithm: Algorithm) -> Vec<QueryRequest> {
    users
        .iter()
        .map(|&user| {
            QueryRequest::for_user(user)
                .k(k)
                .alpha(alpha)
                .algorithm(algorithm)
                .build()
                .expect("measurement parameters are valid")
        })
        .collect()
}

fn time_sequential(engine: &GeoSocialEngine, batch: &[QueryRequest]) -> (usize, f64) {
    // Context construction stays inside the clock: the batch mode pays its
    // per-worker contexts (and thread spawns) inside its clock too, so both
    // figures cover a cold start for the workload.
    let start = Instant::now();
    let mut ctx = engine.make_context();
    let mut executed = 0usize;
    for request in batch {
        if engine.run_with(request, &mut ctx).is_ok() {
            executed += 1;
        }
    }
    let secs = start.elapsed().as_secs_f64();
    (executed, executed as f64 / secs.max(1e-9))
}

fn time_batch(engine: &GeoSocialEngine, batch: &[QueryRequest], threads: usize) -> (usize, f64) {
    let start = Instant::now();
    let results = engine.run_batch_with_threads(batch, threads);
    let secs = start.elapsed().as_secs_f64();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    (ok, ok as f64 / secs.max(1e-9))
}

/// Aggregated first-result (prefix) latency of one algorithm over one
/// workload: how quickly — and after how much search work — a pull-lazy
/// stream ([`QuerySession::stream`](ssrq_core::QuerySession::stream))
/// delivers its first `prefix` entries, compared against the eager full
/// run of the identical queries.
///
/// This is the figure the resumable-driver refactor is measured by: for the
/// incremental-threshold algorithms the prefix numbers should sit well
/// below the full-run numbers, because `stream(..).take(j)` stops stepping
/// the search as soon as the `j`-th entry finalizes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyMeasurement {
    /// Number of queries measured (queries with fewer than `prefix`
    /// results still count — their stream simply ran to exhaustion).
    pub queries: usize,
    /// The prefix length `j` the stream was pulled for.
    pub prefix: usize,
    /// Average wall-clock time of the eager full run.
    pub avg_full: Duration,
    /// Average wall-clock time until the stream yielded `prefix` entries.
    pub avg_prefix: Duration,
    /// Average edge relaxations of the eager full run.
    pub full_relaxed: f64,
    /// Average edge relaxations performed when the `prefix`-th entry had
    /// been yielded.
    pub prefix_relaxed: f64,
}

impl LatencyMeasurement {
    /// Full-run time divided by time-to-prefix (> 1 when streaming pays
    /// off).
    pub fn speedup(&self) -> f64 {
        let prefix = self.avg_prefix.as_secs_f64();
        if prefix > 0.0 {
            self.avg_full.as_secs_f64() / prefix
        } else {
            0.0
        }
    }

    /// Fraction of the full run's edge relaxations the prefix needed
    /// (< 1 when the early exit saves work).
    pub fn work_ratio(&self) -> f64 {
        if self.full_relaxed > 0.0 {
            self.prefix_relaxed / self.full_relaxed
        } else {
            0.0
        }
    }
}

/// Measures time-to-first-result: [`measure_prefix`] with `prefix = 1`.
pub fn measure_first_result(
    engine: &GeoSocialEngine,
    algorithm: Algorithm,
    users: &[UserId],
    k: usize,
    alpha: f64,
) -> LatencyMeasurement {
    measure_prefix(engine, algorithm, users, k, alpha, 1)
}

/// Runs every `(user, k, alpha)` query twice — once eagerly, once as a
/// stream pulled for only `prefix` entries — and aggregates runtime and
/// edge-relaxation counts of both modes.
///
/// Both modes reuse one context; failed queries are skipped (like
/// [`measure_algorithm`]).
pub fn measure_prefix(
    engine: &GeoSocialEngine,
    algorithm: Algorithm,
    users: &[UserId],
    k: usize,
    alpha: f64,
    prefix: usize,
) -> LatencyMeasurement {
    let mut executed = 0usize;
    let mut total_full = Duration::ZERO;
    let mut total_prefix = Duration::ZERO;
    let mut total_full_relaxed = 0usize;
    let mut total_prefix_relaxed = 0usize;
    let mut ctx = engine.make_context();
    for request in requests_for(users, k, alpha, algorithm) {
        let full = match engine.run_with(&request, &mut ctx) {
            Ok(result) => result,
            Err(_) => continue,
        };
        let start = Instant::now();
        let Ok(mut stream) = engine.stream_with(&request, &mut ctx) else {
            continue;
        };
        let mut pulled = 0usize;
        while pulled < prefix && stream.next().is_some() {
            pulled += 1;
        }
        let prefix_elapsed = start.elapsed();
        executed += 1;
        total_full += full.stats.runtime;
        total_prefix += prefix_elapsed;
        total_full_relaxed += full.stats.relaxed_edges;
        total_prefix_relaxed += stream.stats().relaxed_edges;
    }
    let executed_f = executed.max(1) as f64;
    LatencyMeasurement {
        queries: executed,
        prefix,
        avg_full: total_full / executed.max(1) as u32,
        avg_prefix: total_prefix / executed.max(1) as u32,
        full_relaxed: total_full_relaxed as f64 / executed_f,
        prefix_relaxed: total_prefix_relaxed as f64 / executed_f,
    }
}

/// Number of hops (edges on the weighted shortest path) between the query
/// user and the farthest member of the SSRQ result — the quantity of
/// Figure 7(a).  Returns `None` when the result is empty or a result user is
/// unreachable.
pub fn max_result_hops(
    engine: &GeoSocialEngine,
    request: &QueryRequest,
    ctx: &mut ssrq_core::QueryContext,
) -> Option<usize> {
    let result = engine.run_with(request, ctx).ok()?;
    if result.ranked.is_empty() {
        return None;
    }
    let graph = engine.dataset().graph();
    let mut search =
        ssrq_graph::IncrementalDijkstra::new(graph, request.user(), ctx.social_scratch());
    let mut max_hops = 0usize;
    for entry in &result.ranked {
        search.run_until_settled(graph, entry.user);
        let hops = search.path_to(entry.user)?.len().saturating_sub(1);
        max_hops = max_hops.max(hops);
    }
    Some(max_hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_data::{DatasetConfig, QueryWorkload};

    fn engine_for(users: usize) -> GeoSocialEngine {
        let dataset = DatasetConfig::gowalla_like(users).generate();
        GeoSocialEngine::builder(dataset).build().unwrap()
    }

    #[test]
    fn measurement_aggregates_over_the_workload() {
        let engine = engine_for(600);
        let workload = QueryWorkload::generate(engine.dataset(), 5, 1);
        let m = measure_algorithm(&engine, Algorithm::Ais, &workload.users, 10, 0.3);
        assert_eq!(m.queries, 5);
        assert!(m.avg_runtime > Duration::ZERO);
        assert!(m.pop_ratio >= 0.0 && m.pop_ratio <= 2.0);
        assert!(m.avg_millis() > 0.0);
        assert!(m.avg_evaluated >= 1.0);
    }

    #[test]
    fn max_result_hops_reports_a_positive_hop_count() {
        let engine = engine_for(400);
        let user = QueryWorkload::generate(engine.dataset(), 1, 2).users[0];
        let mut ctx = engine.make_context();
        let request = QueryRequest::for_user(user)
            .k(10)
            .alpha(0.3)
            .algorithm(Algorithm::Ais)
            .build()
            .unwrap();
        let hops = max_result_hops(&engine, &request, &mut ctx);
        assert!(hops.unwrap_or(0) >= 1);
    }

    #[test]
    fn throughput_measures_both_modes_over_the_same_workload() {
        let engine = engine_for(500);
        let workload = QueryWorkload::generate(engine.dataset(), 8, 5);
        let t = measure_throughput(&engine, Algorithm::Ais, &workload.users, 10, 0.3, 2);
        assert_eq!(t.queries, 8);
        assert_eq!(t.threads, 2);
        assert!(t.sequential_qps > 0.0);
        assert!(t.batch_qps > 0.0);
        assert!(t.speedup() > 0.0);
    }

    #[test]
    fn prefix_measurement_shows_early_exit_doing_less_work() {
        let engine = engine_for(500);
        let workload = QueryWorkload::generate(engine.dataset(), 6, 9);
        let m = measure_first_result(&engine, Algorithm::Ais, &workload.users, 10, 0.3);
        assert_eq!(m.queries, 6);
        assert_eq!(m.prefix, 1);
        assert!(m.avg_full > Duration::ZERO);
        assert!(m.full_relaxed > 0.0);
        // A first-result stream never does more search work than the full
        // run, and on a typical workload it does strictly less.
        assert!(m.prefix_relaxed <= m.full_relaxed);
        assert!(m.work_ratio() < 1.0, "work ratio {}", m.work_ratio());
    }

    #[test]
    fn failed_queries_are_skipped() {
        let engine = engine_for(300);
        // SfaCh requires a CH index that was never built: every query fails.
        let m = measure_algorithm(&engine, Algorithm::SfaCh, &[0, 1, 2], 5, 0.5);
        assert_eq!(m.queries, 0);
    }
}
