//! Workload execution and measurement aggregation.

use ssrq_core::{Algorithm, GeoSocialEngine, QueryParams, UserId};
use std::time::Duration;

/// Aggregated measurements of one algorithm over one workload — the
/// quantities the paper plots: average run-time per query and the pop ratio
/// `|V_pop| / |V|`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AggregateMeasurement {
    /// Number of queries executed.
    pub queries: usize,
    /// Average wall-clock time per query.
    pub avg_runtime: Duration,
    /// Average pop ratio (settled graph vertices / graph size).
    pub pop_ratio: f64,
    /// Average number of users whose exact score was computed.
    pub avg_evaluated: f64,
    /// Average number of exact graph-distance computations.
    pub avg_distance_calls: f64,
}

impl AggregateMeasurement {
    /// Average run-time in milliseconds (the unit of the paper's plots).
    pub fn avg_millis(&self) -> f64 {
        self.avg_runtime.as_secs_f64() * 1e3
    }
}

/// Runs `algorithm` for every `(user, k, alpha)` combination of the given
/// users and parameters, returning the aggregate measurement.
pub fn measure_algorithm(
    engine: &GeoSocialEngine,
    algorithm: Algorithm,
    users: &[UserId],
    k: usize,
    alpha: f64,
) -> AggregateMeasurement {
    let mut total_runtime = Duration::ZERO;
    let mut total_pops = 0usize;
    let mut total_evaluated = 0usize;
    let mut total_distance_calls = 0usize;
    let graph_size = engine.dataset().user_count().max(1);
    let mut executed = 0usize;

    for &user in users {
        let params = QueryParams::new(user, k, alpha);
        let result = match engine.query(algorithm, &params) {
            Ok(result) => result,
            Err(_) => continue,
        };
        executed += 1;
        total_runtime += result.stats.runtime;
        total_pops += result.stats.social_pops;
        total_evaluated += result.stats.evaluated_users;
        total_distance_calls += result.stats.distance_calls;
    }
    let executed_f = executed.max(1) as f64;
    AggregateMeasurement {
        queries: executed,
        avg_runtime: total_runtime / executed.max(1) as u32,
        pop_ratio: total_pops as f64 / executed_f / graph_size as f64,
        avg_evaluated: total_evaluated as f64 / executed_f,
        avg_distance_calls: total_distance_calls as f64 / executed_f,
    }
}

/// Number of hops (edges on the weighted shortest path) between the query
/// user and the farthest member of the SSRQ result — the quantity of
/// Figure 7(a).  Returns `None` when the result is empty or a result user is
/// unreachable.
pub fn max_result_hops(
    engine: &GeoSocialEngine,
    algorithm: Algorithm,
    params: &QueryParams,
) -> Option<usize> {
    let result = engine.query(algorithm, params).ok()?;
    if result.ranked.is_empty() {
        return None;
    }
    let graph = engine.dataset().graph();
    let mut search = ssrq_graph::IncrementalDijkstra::new(graph, params.user);
    let mut max_hops = 0usize;
    for entry in &result.ranked {
        search.run_until_settled(graph, entry.user);
        let hops = search.path_to(entry.user)?.len().saturating_sub(1);
        max_hops = max_hops.max(hops);
    }
    Some(max_hops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_core::EngineConfig;
    use ssrq_data::{DatasetConfig, QueryWorkload};

    #[test]
    fn measurement_aggregates_over_the_workload() {
        let dataset = DatasetConfig::gowalla_like(600).generate();
        let engine = GeoSocialEngine::build(dataset, EngineConfig::default()).unwrap();
        let workload = QueryWorkload::generate(engine.dataset(), 5, 1);
        let m = measure_algorithm(&engine, Algorithm::Ais, &workload.users, 10, 0.3);
        assert_eq!(m.queries, 5);
        assert!(m.avg_runtime > Duration::ZERO);
        assert!(m.pop_ratio >= 0.0 && m.pop_ratio <= 2.0);
        assert!(m.avg_millis() > 0.0);
        assert!(m.avg_evaluated >= 1.0);
    }

    #[test]
    fn max_result_hops_reports_a_positive_hop_count() {
        let dataset = DatasetConfig::gowalla_like(400).generate();
        let engine = GeoSocialEngine::build(dataset, EngineConfig::default()).unwrap();
        let user = QueryWorkload::generate(engine.dataset(), 1, 2).users[0];
        let hops = max_result_hops(&engine, Algorithm::Ais, &QueryParams::new(user, 10, 0.3));
        assert!(hops.unwrap_or(0) >= 1);
    }

    #[test]
    fn failed_queries_are_skipped() {
        let dataset = DatasetConfig::gowalla_like(300).generate();
        let engine = GeoSocialEngine::build(dataset, EngineConfig::default()).unwrap();
        // SfaCh requires a CH index that was never built: every query fails.
        let m = measure_algorithm(&engine, Algorithm::SfaCh, &[0, 1, 2], 5, 0.5);
        assert_eq!(m.queries, 0);
    }
}
