//! Memory accounting for the shared immutable substrate: approximate
//! resident bytes of a sharded deployment, shared versus per-shard, and the
//! counterfactual cost of the pre-refactor per-shard cloning.

use ssrq_core::{EngineMemory, GeoSocialDataset};
use ssrq_shard::{Partitioning, ShardedEngine};
use std::time::{Duration, Instant};

/// Approximate resident bytes of one sharded configuration, attributed by
/// sharing class; see [`measure_memory`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemoryMeasurement {
    /// Shards in the configuration.
    pub shards: usize,
    /// Bytes of the `Arc`-shared graph-only artifacts (graph, landmarks,
    /// CH, social cache), resident **once** for the whole deployment.
    pub shared_bytes: usize,
    /// Sum of the per-shard bytes (locations, SPA/TSA grid, AIS index)
    /// across all shards.
    pub per_shard_bytes: usize,
    /// What the same configuration would cost if every shard cloned the
    /// graph-only artifacts instead of sharing them (the pre-refactor
    /// ownership model): `shards × shared + per-shard`.
    pub cloned_estimate_bytes: usize,
    /// Wall-clock time to partition the dataset and build every shard
    /// engine (graph-only indexes built once, thanks to sharing).
    pub build_time: Duration,
}

impl MemoryMeasurement {
    /// Total approximate resident bytes under the shared ownership model.
    pub fn total_bytes(&self) -> usize {
        self.shared_bytes + self.per_shard_bytes
    }

    /// How many times smaller the shared model is than per-shard cloning.
    pub fn savings_factor(&self) -> f64 {
        self.cloned_estimate_bytes as f64 / self.total_bytes().max(1) as f64
    }
}

/// Builds a [`ShardedEngine`] over (a clone of) `dataset` and attributes
/// its approximate resident bytes: shared (graph, landmarks, CH when
/// `with_ch` forces the build, social cache) versus per-shard (locations,
/// grids, AIS indexes), plus the pre-refactor cloning counterfactual.
///
/// The attribution is not an assumption: the function asserts — via
/// [`GeoSocialDataset::shares_core_with`] and pointer-equal `Arc` handles —
/// that every shard really references shard 0's instances before counting
/// them once.
pub fn measure_memory(
    dataset: &GeoSocialDataset,
    policy: Partitioning,
    shards: usize,
    with_ch: bool,
) -> MemoryMeasurement {
    let build_started = Instant::now();
    let mut builder = ShardedEngine::builder(dataset.clone())
        .shards(shards)
        .partitioning(policy);
    if with_ch {
        builder = builder.configure_engines(|b| b.with_ch(ssrq_core::ChBuild::Lazy));
    }
    let engine = builder.build().expect("sharded engine builds");
    if with_ch {
        // Force the lazy, core-shared CH build so its bytes are visible.
        engine
            .shard_engine(0)
            .require_contraction_hierarchy()
            .expect("CH builds");
    }
    let build_time = build_started.elapsed();

    let first = engine.shard_engine(0);
    let shared = first.memory_breakdown();
    let mut per_shard_bytes = 0usize;
    for s in 0..engine.shard_count() {
        let shard = engine.shard_engine(s);
        // The shared attribution is only honest if the instances really are
        // shared — prove it before counting them once.
        assert!(
            shard.dataset().shares_core_with(first.dataset()),
            "shard {s} does not share the dataset core"
        );
        assert!(
            std::sync::Arc::ptr_eq(&shard.shared_landmarks(), &first.shared_landmarks()),
            "shard {s} does not share the landmark set"
        );
        if with_ch {
            assert!(
                std::sync::Arc::ptr_eq(
                    &shard
                        .shared_contraction_hierarchy()
                        .expect("CH built on every shard handle"),
                    &first.shared_contraction_hierarchy().expect("CH built"),
                ),
                "shard {s} does not share the CH index"
            );
        }
        per_shard_bytes += shard.memory_breakdown().per_engine_bytes();
    }
    let shared_bytes = shared.shared_bytes();
    MemoryMeasurement {
        shards: engine.shard_count(),
        shared_bytes,
        per_shard_bytes,
        cloned_estimate_bytes: shared_bytes * engine.shard_count() + per_shard_bytes,
        build_time,
    }
}

/// The sharing-class breakdown of a single (unsharded) engine, re-exported
/// for report rendering.
pub fn single_engine_breakdown(dataset: &GeoSocialDataset) -> EngineMemory {
    ssrq_core::GeoSocialEngine::builder(dataset.clone())
        .build()
        .expect("engine builds")
        .memory_breakdown()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_data::DatasetConfig;

    #[test]
    fn shared_bytes_do_not_scale_with_shard_count() {
        let dataset = DatasetConfig::gowalla_like(400).generate();
        let two = measure_memory(
            &dataset,
            Partitioning::SpatialGrid { cells_per_axis: 8 },
            2,
            false,
        );
        let eight = measure_memory(
            &dataset,
            Partitioning::SpatialGrid { cells_per_axis: 8 },
            8,
            false,
        );
        assert_eq!(two.shared_bytes, eight.shared_bytes);
        assert!(eight.cloned_estimate_bytes > eight.total_bytes());
        assert!(eight.savings_factor() > two.savings_factor());
        // The counterfactual grows ~linearly in the shard count; the shared
        // model only adds per-shard location state.
        assert!(
            eight.cloned_estimate_bytes - two.cloned_estimate_bytes
                >= 5 * two.shared_bytes
                    + (eight.per_shard_bytes.saturating_sub(two.per_shard_bytes))
        );
    }

    #[test]
    fn ch_bytes_are_counted_once_when_forced() {
        let dataset = DatasetConfig::gowalla_like(120).generate();
        let without = measure_memory(&dataset, Partitioning::UserHash, 4, false);
        let with = measure_memory(&dataset, Partitioning::UserHash, 4, true);
        assert!(with.shared_bytes > without.shared_bytes);
        assert_eq!(with.per_shard_bytes, without.per_shard_bytes);
    }
}
