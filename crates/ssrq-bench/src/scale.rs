//! The 10k→1M scale sweep behind `BENCH_scale.json`.
//!
//! One sweep point generates a gowalla-like dataset at a target user count,
//! records the shared-graph footprint under both CSR layouts (the serving
//! substrate itself runs on the compressed layout — both decode
//! bit-identically), measures the unsharded engine (build time, sequential
//! q/s, first-result latency, memory breakdown with AIS occupancy), and
//! then measures the sharded scatter-gather layer under both partitioning
//! policies at several shard counts, with a per-shard memory breakdown.
//!
//! Every AIS index the sweep touches is checked against the
//! occupancy-proportional budget of [`ais_budget_bytes`]: per-shard AIS
//! bytes must scale with the summaries a shard actually materialises (plus
//! its resident located users), never with the grid geometry — the property
//! the sparse AIS layout exists to provide.

use crate::json::Json;
use crate::{measure_first_result, measure_sequential_qps};
use ssrq_core::{Algorithm, EngineMemory, GeoSocialDataset, GeoSocialEngine, QueryRequest};
use ssrq_data::{DatasetConfig, QueryWorkload};
use ssrq_graph::CsrLayout;
use ssrq_shard::{Partitioning, ShardedEngine};
use std::time::Instant;

/// Fixed byte allowance of an AIS index over an **empty** shard: grid
/// skeleton, empty hash maps, the one shared empty summary.  Pre-refactor
/// this was ~2 MiB of dense per-cell summaries regardless of residency.
pub const AIS_EMPTY_BUDGET_BYTES: usize = 16 * 1024;

/// Byte allowance per grid node carrying a materialised social summary
/// (dense summary slot, slot-map entry, min/max landmark vectors).
pub const AIS_PER_CELL_BUDGET_BYTES: usize = 1024;

/// Byte allowance per resident located user (grid position entry plus its
/// share of the leaf bucket).
pub const AIS_PER_ITEM_BUDGET_BYTES: usize = 160;

/// The occupancy-proportional AIS budget: what an index holding
/// `occupied_cells` materialised summaries over `located_items` resident
/// users may cost, independent of the total grid-cell count.
pub fn ais_budget_bytes(occupied_cells: usize, located_items: usize) -> usize {
    AIS_EMPTY_BUDGET_BYTES
        + occupied_cells * AIS_PER_CELL_BUDGET_BYTES
        + located_items * AIS_PER_ITEM_BUDGET_BYTES
}

/// Checks one engine's memory breakdown against [`ais_budget_bytes`].
///
/// # Errors
///
/// Returns a description of the violation when the AIS bytes exceed the
/// occupancy-proportional budget.
pub fn check_ais_budget(
    label: &str,
    memory: &EngineMemory,
    located_items: usize,
) -> Result<(), String> {
    let budget = ais_budget_bytes(memory.ais_occupied_cells, located_items);
    if memory.ais_bytes > budget {
        return Err(format!(
            "{label}: AIS index costs {} bytes, over the occupancy budget of {budget} \
             ({} occupied of {} cells, {located_items} located residents)",
            memory.ais_bytes, memory.ais_occupied_cells, memory.ais_total_cells
        ));
    }
    Ok(())
}

/// Configuration of one scale sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleSweepConfig {
    /// Target user counts, one sweep point each.
    pub user_counts: Vec<usize>,
    /// Shard counts measured per partitioning policy at every point.
    pub shard_counts: Vec<usize>,
    /// Queries per measurement.
    pub queries: usize,
    /// Worker threads for the sharded batch runs.
    pub threads: usize,
    /// Result size `k` of the workload queries.
    pub k: usize,
    /// Preference parameter `alpha` of the workload queries.
    pub alpha: f64,
}

impl Default for ScaleSweepConfig {
    fn default() -> Self {
        ScaleSweepConfig {
            user_counts: vec![10_000, 50_000, 200_000, 1_000_000],
            shard_counts: vec![2, 4, 8],
            queries: 32,
            threads: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            k: 10,
            alpha: 0.3,
        }
    }
}

impl ScaleSweepConfig {
    /// Multiplies every user count by `factor` (floor 100 users per point;
    /// points that collapse onto each other are deduplicated).
    pub fn scaled_by(mut self, factor: f64) -> Self {
        let f = factor.max(0.000_1);
        for users in &mut self.user_counts {
            *users = (((*users as f64) * f) as usize).max(100);
        }
        self.user_counts.dedup();
        self
    }
}

/// Runs the sweep and returns the `BENCH_scale.json` document.
///
/// Panics if any engine violates the occupancy-proportional AIS budget —
/// a sweep that would persist an artifact contradicting the memory model
/// must fail loudly instead.
pub fn run_scale_sweep(config: &ScaleSweepConfig) -> Json {
    let scales = config
        .user_counts
        .iter()
        .map(|&users| measure_scale_point(config, users))
        .collect();
    Json::Obj(vec![
        ("schema_version".into(), Json::num(1)),
        ("dataset".into(), Json::str("gowalla-like")),
        (
            "generated_by".into(),
            Json::str("cargo run --release -p ssrq-bench --bin experiments -- scale"),
        ),
        ("queries".into(), Json::num(config.queries)),
        ("threads".into(), Json::num(config.threads)),
        ("k".into(), Json::num(config.k)),
        ("alpha".into(), Json::Num(config.alpha)),
        (
            "ais_budget".into(),
            Json::Obj(vec![
                ("empty_bytes".into(), Json::num(AIS_EMPTY_BUDGET_BYTES)),
                (
                    "per_occupied_cell_bytes".into(),
                    Json::num(AIS_PER_CELL_BUDGET_BYTES),
                ),
                (
                    "per_located_item_bytes".into(),
                    Json::num(AIS_PER_ITEM_BUDGET_BYTES),
                ),
            ]),
        ),
        ("scales".into(), Json::Arr(scales)),
    ])
}

fn measure_scale_point(config: &ScaleSweepConfig, users: usize) -> Json {
    let generate_started = Instant::now();
    let preset = DatasetConfig::gowalla_like(users);
    let graph = preset.generate_graph();
    let mut locations = preset.generate_social_locations(&graph);
    let generate_secs = generate_started.elapsed().as_secs_f64();
    if locations.iter().flatten().count() == 0 {
        if let Some(slot) = locations.first_mut() {
            *slot = Some(ssrq_spatial::Point::new(0.5, 0.5));
        }
    }

    let standard_bytes = graph.approx_heap_bytes();
    let compress_started = Instant::now();
    let compressed = graph.with_layout(CsrLayout::Compressed);
    let compress_secs = compress_started.elapsed().as_secs_f64();
    let compressed_bytes = compressed.approx_heap_bytes();
    let edges = graph.edge_count();
    drop(graph);

    // Everything downstream — norms, landmarks, every query — runs on the
    // compressed layout; the layout-equivalence tests guarantee identical
    // results, this run demonstrates it carries the serving path at scale.
    let dataset =
        GeoSocialDataset::new(compressed, locations).expect("generated dataset is well-formed");
    let workload = QueryWorkload::generate(&dataset, config.queries, 0x5CA1E);

    let build_started = Instant::now();
    let engine = GeoSocialEngine::builder(dataset.clone())
        .build()
        .expect("engine builds");
    let build_secs = build_started.elapsed().as_secs_f64();
    let memory = engine.memory_breakdown();
    let located = dataset.located_user_count();
    if let Err(violation) = check_ais_budget(&format!("single engine @{users}"), &memory, located) {
        panic!("{violation}");
    }
    let (_, qps) = measure_sequential_qps(
        &engine,
        Algorithm::Ais,
        &workload.users,
        config.k,
        config.alpha,
    );
    let first = measure_first_result(
        &engine,
        Algorithm::Ais,
        &workload.users,
        config.k,
        config.alpha,
    );
    drop(engine);

    let mut sharded = Vec::new();
    for (policy_name, policy) in [
        ("hash", Partitioning::UserHash),
        ("spatial", Partitioning::SpatialGrid { cells_per_axis: 16 }),
    ] {
        for &shards in &config.shard_counts {
            sharded.push(measure_sharded_point(
                config,
                &dataset,
                &workload,
                policy_name,
                policy,
                shards,
            ));
        }
    }

    Json::Obj(vec![
        ("users".into(), Json::num(users)),
        ("edges".into(), Json::num(edges)),
        ("located_users".into(), Json::num(located)),
        ("generate_secs".into(), Json::Num(generate_secs)),
        (
            "graph".into(),
            Json::Obj(vec![
                ("standard_bytes".into(), Json::num(standard_bytes)),
                ("compressed_bytes".into(), Json::num(compressed_bytes)),
                (
                    "compression_ratio".into(),
                    Json::Num(compressed_bytes as f64 / standard_bytes.max(1) as f64),
                ),
                ("compress_secs".into(), Json::Num(compress_secs)),
            ]),
        ),
        (
            "single".into(),
            Json::Obj(vec![
                ("build_secs".into(), Json::Num(build_secs)),
                ("qps".into(), Json::Num(qps)),
                (
                    "first_result_ms".into(),
                    Json::Num(first.avg_prefix.as_secs_f64() * 1e3),
                ),
                (
                    "full_query_ms".into(),
                    Json::Num(first.avg_full.as_secs_f64() * 1e3),
                ),
                ("memory".into(), memory_json(&memory)),
            ]),
        ),
        ("sharded".into(), Json::Arr(sharded)),
    ])
}

fn measure_sharded_point(
    config: &ScaleSweepConfig,
    dataset: &GeoSocialDataset,
    workload: &QueryWorkload,
    policy_name: &str,
    policy: Partitioning,
    shards: usize,
) -> Json {
    let build_started = Instant::now();
    let engine = ShardedEngine::builder(dataset.clone())
        .shards(shards)
        .partitioning(policy)
        .build()
        .expect("sharded engine builds");
    let build_secs = build_started.elapsed().as_secs_f64();

    let batch: Vec<QueryRequest> = workload
        .users
        .iter()
        .map(|&user| {
            QueryRequest::for_user(user)
                .k(config.k)
                .alpha(config.alpha)
                .algorithm(Algorithm::Ais)
                .build()
                .expect("valid workload parameters")
        })
        .collect();
    let run_started = Instant::now();
    let results = engine.run_batch_with_threads(&batch, config.threads);
    let secs = run_started.elapsed().as_secs_f64();
    let ok = results.iter().filter(|r| r.is_ok()).count();

    let occupancy = engine.occupancy();
    let mut per_shard_bytes = 0usize;
    let mut detail = Vec::new();
    for (s, &residents) in occupancy.iter().enumerate() {
        let shard = engine.shard_engine(s);
        let memory = shard.memory_breakdown();
        let located = shard.dataset().located_user_count();
        if let Err(violation) = check_ais_budget(
            &format!(
                "{policy_name} x{shards} shard {s} @{} users",
                dataset.user_count()
            ),
            &memory,
            located,
        ) {
            panic!("{violation}");
        }
        per_shard_bytes += memory.per_engine_bytes();
        detail.push(Json::Obj(vec![
            ("shard".into(), Json::num(s)),
            ("resident_located_users".into(), Json::num(residents)),
            ("locations_bytes".into(), Json::num(memory.locations_bytes)),
            ("grid_bytes".into(), Json::num(memory.grid_bytes)),
            ("ais_bytes".into(), Json::num(memory.ais_bytes)),
            (
                "ais_occupied_cells".into(),
                Json::num(memory.ais_occupied_cells),
            ),
            ("ais_total_cells".into(), Json::num(memory.ais_total_cells)),
            (
                "ais_occupancy_ratio".into(),
                Json::Num(memory.ais_occupancy_ratio()),
            ),
        ]));
    }
    let shared_bytes = engine.shard_engine(0).memory_breakdown().shared_bytes();

    Json::Obj(vec![
        ("policy".into(), Json::str(policy_name)),
        ("shards".into(), Json::num(shards)),
        ("build_secs".into(), Json::Num(build_secs)),
        ("batch_qps".into(), Json::Num(ok as f64 / secs.max(1e-9))),
        ("queries_ok".into(), Json::num(ok)),
        ("shared_bytes".into(), Json::num(shared_bytes)),
        ("per_shard_bytes".into(), Json::num(per_shard_bytes)),
        ("shards_detail".into(), Json::Arr(detail)),
    ])
}

fn memory_json(memory: &EngineMemory) -> Json {
    Json::Obj(vec![
        ("graph_bytes".into(), Json::num(memory.graph_bytes)),
        ("landmarks_bytes".into(), Json::num(memory.landmarks_bytes)),
        ("locations_bytes".into(), Json::num(memory.locations_bytes)),
        ("grid_bytes".into(), Json::num(memory.grid_bytes)),
        ("ais_bytes".into(), Json::num(memory.ais_bytes)),
        (
            "ais_occupied_cells".into(),
            Json::num(memory.ais_occupied_cells),
        ),
        ("ais_total_cells".into(), Json::num(memory.ais_total_cells)),
        (
            "ais_occupancy_ratio".into(),
            Json::Num(memory.ais_occupancy_ratio()),
        ),
    ])
}

/// Validates a parsed `BENCH_scale.json` document: schema shape, the
/// compressed-vs-standard graph relation, and the occupancy-proportional
/// AIS budget of every shard — recomputed from the parsed numbers, so the
/// artifact is checked as readers will see it, not as the writer meant it.
///
/// # Errors
///
/// Returns a description of the first violated invariant.
pub fn validate_scale_report(report: &Json) -> Result<(), String> {
    if report.get("schema_version").and_then(Json::as_usize) != Some(1) {
        return Err("schema_version missing or not 1".into());
    }
    let scales = report
        .get("scales")
        .and_then(Json::as_array)
        .ok_or("`scales` array missing")?;
    if scales.is_empty() {
        return Err("`scales` is empty".into());
    }
    for scale in scales {
        let users = scale
            .get("users")
            .and_then(Json::as_usize)
            .ok_or("scale point without `users`")?;
        let graph = scale.get("graph").ok_or("scale point without `graph`")?;
        let standard = graph
            .get("standard_bytes")
            .and_then(Json::as_usize)
            .ok_or("graph without `standard_bytes`")?;
        let compressed = graph
            .get("compressed_bytes")
            .and_then(Json::as_usize)
            .ok_or("graph without `compressed_bytes`")?;
        if compressed >= standard {
            return Err(format!(
                "@{users} users: compressed graph ({compressed} B) not below standard ({standard} B)"
            ));
        }
        let single_memory = scale
            .get("single")
            .and_then(|s| s.get("memory"))
            .ok_or("scale point without `single.memory`")?;
        check_parsed_ais_budget(
            &format!("single engine @{users}"),
            single_memory,
            scale.get("located_users").and_then(Json::as_usize),
        )?;
        let sharded = scale
            .get("sharded")
            .and_then(Json::as_array)
            .ok_or("scale point without `sharded`")?;
        if sharded.is_empty() {
            return Err(format!("@{users} users: no sharded configurations"));
        }
        for run in sharded {
            let policy = run.get("policy").and_then(Json::as_str).unwrap_or("?");
            let shards = run.get("shards").and_then(Json::as_usize).unwrap_or(0);
            let detail = run
                .get("shards_detail")
                .and_then(Json::as_array)
                .ok_or("sharded run without `shards_detail`")?;
            if detail.len() != shards {
                return Err(format!(
                    "@{users} users {policy}: {} detail rows for {shards} shards",
                    detail.len()
                ));
            }
            for row in detail {
                check_parsed_ais_budget(
                    &format!("@{users} users {policy} x{shards}"),
                    row,
                    row.get("resident_located_users").and_then(Json::as_usize),
                )?;
            }
        }
    }
    Ok(())
}

fn check_parsed_ais_budget(
    label: &str,
    memory: &Json,
    located: Option<usize>,
) -> Result<(), String> {
    let ais_bytes = memory
        .get("ais_bytes")
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("{label}: `ais_bytes` missing"))?;
    let occupied = memory
        .get("ais_occupied_cells")
        .and_then(Json::as_usize)
        .ok_or_else(|| format!("{label}: `ais_occupied_cells` missing"))?;
    let located = located.ok_or_else(|| format!("{label}: located-user count missing"))?;
    let budget = ais_budget_bytes(occupied, located);
    if ais_bytes > budget {
        return Err(format!(
            "{label}: AIS bytes {ais_bytes} exceed occupancy budget {budget} \
             ({occupied} occupied cells, {located} located residents)"
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn budget_is_occupancy_proportional() {
        assert_eq!(ais_budget_bytes(0, 0), AIS_EMPTY_BUDGET_BYTES);
        assert!(ais_budget_bytes(10, 100) > ais_budget_bytes(10, 0));
        let over = EngineMemory {
            ais_bytes: AIS_EMPTY_BUDGET_BYTES + 1,
            ..EngineMemory::default()
        };
        assert!(check_ais_budget("test", &over, 0).is_err());
        assert!(check_ais_budget("test", &EngineMemory::default(), 0).is_ok());
    }

    #[test]
    fn tiny_sweep_produces_a_valid_report() {
        let config = ScaleSweepConfig {
            user_counts: vec![300, 600],
            shard_counts: vec![2],
            queries: 4,
            threads: 2,
            k: 5,
            alpha: 0.3,
        };
        let report = run_scale_sweep(&config);
        // The report must survive its own serialisation cycle.
        let parsed = Json::parse(&report.render()).expect("report re-parses");
        assert_eq!(parsed, report);
        validate_scale_report(&parsed).expect("report validates");
        let scales = parsed.get("scales").and_then(Json::as_array).unwrap();
        assert_eq!(scales.len(), 2);
        let first = &scales[0];
        assert_eq!(first.get("users").and_then(Json::as_usize), Some(300));
        // hash + spatial at one shard count each.
        assert_eq!(
            first
                .get("sharded")
                .and_then(Json::as_array)
                .map(<[_]>::len),
            Some(2)
        );
        assert!(
            first
                .get("single")
                .and_then(|s| s.get("qps"))
                .and_then(Json::as_f64)
                .unwrap()
                > 0.0
        );
    }

    #[test]
    fn scaled_by_shrinks_and_floors_the_user_counts() {
        let config = ScaleSweepConfig::default().scaled_by(0.01);
        assert_eq!(config.user_counts, vec![100, 500, 2_000, 10_000]);
        let floor = ScaleSweepConfig::default().scaled_by(0.000_001);
        assert_eq!(floor.user_counts, vec![100]);
    }

    #[test]
    fn validation_rejects_budget_violations() {
        let report = Json::Obj(vec![
            ("schema_version".into(), Json::num(1)),
            (
                "scales".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("users".into(), Json::num(100)),
                    ("located_users".into(), Json::num(0)),
                    (
                        "graph".into(),
                        Json::Obj(vec![
                            ("standard_bytes".into(), Json::num(1000)),
                            ("compressed_bytes".into(), Json::num(500)),
                        ]),
                    ),
                    (
                        "single".into(),
                        Json::Obj(vec![(
                            "memory".into(),
                            Json::Obj(vec![
                                ("ais_bytes".into(), Json::num(AIS_EMPTY_BUDGET_BYTES + 1)),
                                ("ais_occupied_cells".into(), Json::num(0)),
                            ]),
                        )]),
                    ),
                    ("sharded".into(), Json::Arr(vec![])),
                ])]),
            ),
        ]);
        let err = validate_scale_report(&report).unwrap_err();
        assert!(err.contains("exceed occupancy budget"), "{err}");
    }
}
