//! Sharded scatter-gather measurement: batch throughput and the
//! coordinator's pruning effectiveness, per shard count and partitioning
//! policy — the trajectory figure of the horizontal serving layer.

use ssrq_core::{Algorithm, GeoSocialDataset, QueryRequest, UserId};
use ssrq_shard::{Partitioning, ShardedEngine};
use std::time::{Duration, Instant};

/// Aggregated measurements of one sharded configuration over one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardingMeasurement {
    /// Shards in the configuration.
    pub shards: usize,
    /// Queries executed.
    pub queries: usize,
    /// Time to partition the dataset and build every shard engine.
    pub build_time: Duration,
    /// Queries per second through
    /// [`ShardedEngine::run_batch_with_threads`] (queries are the unit of
    /// parallelism; each visits its shards sequentially best-first).
    pub batch_qps: f64,
    /// Average shards skipped per query by the threshold / bounding-rect
    /// pruning (sequential best-first scatter).
    pub avg_skipped_shards: f64,
    /// Average shards that actually ran their search per query.
    pub avg_executed_shards: f64,
}

impl ShardingMeasurement {
    /// Fraction of shard visits the coordinator proved unnecessary.
    pub fn skip_ratio(&self) -> f64 {
        let total = self.avg_skipped_shards + self.avg_executed_shards;
        if total > 0.0 {
            self.avg_skipped_shards / total
        } else {
            0.0
        }
    }
}

/// Builds a [`ShardedEngine`] over (a clone of) `dataset` and measures it
/// on the workload `(users, k, alpha)` with [`Algorithm::Ais`]: batch
/// throughput at `threads` workers, plus per-query skip counts from
/// sequential best-first scatters.
///
/// With `with_ch` the shards are configured with an **eager** Contraction
/// Hierarchies index, so `build_time` includes the CH preprocessing — built
/// once and shared across all shards through the dataset core, which is
/// what keeps the `*-CH` shard-build wall time flat in the shard count
/// (pre-refactor it was one full CH build *per shard*).  Note the lazy CH
/// slot lives in the shared core of `dataset` itself: measuring several
/// configurations over the same dataset pays the CH build only once, so
/// pass a freshly generated dataset per configuration for isolated build
/// timings.
#[allow(clippy::too_many_arguments)] // flat call shape mirrors the other measure_* helpers
pub fn measure_sharding(
    dataset: &GeoSocialDataset,
    policy: Partitioning,
    shards: usize,
    users: &[UserId],
    k: usize,
    alpha: f64,
    threads: usize,
    with_ch: bool,
) -> ShardingMeasurement {
    let build_started = Instant::now();
    let mut builder = ShardedEngine::builder(dataset.clone())
        .shards(shards)
        .partitioning(policy);
    if with_ch {
        builder = builder.configure_engines(|b| b.with_ch(ssrq_core::ChBuild::Eager));
    }
    let engine = builder.build().expect("sharded engine builds");
    let build_time = build_started.elapsed();

    let batch: Vec<QueryRequest> = users
        .iter()
        .map(|&user| {
            QueryRequest::for_user(user)
                .k(k)
                .alpha(alpha)
                .algorithm(Algorithm::Ais)
                .build()
                .expect("valid workload parameters")
        })
        .collect();

    let started = Instant::now();
    let results = engine.run_batch_with_threads(&batch, threads);
    let secs = started.elapsed().as_secs_f64();
    let ok = results.iter().filter(|r| r.is_ok()).count();

    let mut skipped = 0usize;
    let mut executed = 0usize;
    for request in &batch {
        if let Ok((_, stats)) = engine.run_with_stats_threads(request, 1) {
            skipped += stats.skipped_shards();
            executed += stats.executed_shards();
        }
    }
    let per_query = ok.max(1) as f64;
    ShardingMeasurement {
        shards,
        queries: ok,
        build_time,
        batch_qps: ok as f64 / secs.max(1e-9),
        avg_skipped_shards: skipped as f64 / per_query,
        avg_executed_shards: executed as f64 / per_query,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssrq_data::{DatasetConfig, QueryWorkload};

    #[test]
    fn sharding_measurement_accounts_for_every_shard() {
        let dataset = DatasetConfig::gowalla_like(500).generate();
        let workload = QueryWorkload::generate(&dataset, 6, 3);
        let m = measure_sharding(
            &dataset,
            Partitioning::SpatialGrid { cells_per_axis: 8 },
            3,
            &workload.users,
            10,
            0.3,
            2,
            false,
        );
        assert_eq!(m.shards, 3);
        assert_eq!(m.queries, 6);
        assert!(m.batch_qps > 0.0);
        assert!(m.build_time > Duration::ZERO);
        // Every query saw all 3 shards, each either executed or skipped.
        assert!((m.avg_skipped_shards + m.avg_executed_shards - 3.0).abs() < 1e-9);
        assert!(m.skip_ratio() >= 0.0 && m.skip_ratio() <= 1.0);
    }
}
