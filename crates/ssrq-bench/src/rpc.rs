//! Multi-process serving measurement: `shard-server` process management
//! and the in-process vs over-the-wire scatter-gather comparison behind
//! `experiments -- rpc` (persisted to `BENCH_rpc.json`).
//!
//! The deployment contract mirrors the `shard-server` binary: every
//! process is launched with the same `--users/--seed/--partitioning/
//! --shards`, so each regenerates the identical dataset and
//! [`ShardAssignment`](ssrq_shard::ShardAssignment) and serves its own
//! shard of it.  [`ShardProcess::spawn`] blocks until the server announces
//! its bound endpoint on stdout, so a returned process is ready to accept
//! connections (and with `tcp:host:0` the announced endpoint carries the
//! kernel-assigned port).

use crate::json::Json;
use ssrq_core::{QueryRequest, QueryResult};
use ssrq_data::DatasetConfig;
use ssrq_net::{Endpoint, RemoteShardedEngine};
use ssrq_shard::{Partitioning, ScatterMode, ShardedEngine};
use std::io::{self, BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// One synthetic multi-process deployment: the parameters every
/// `shard-server` process of the cluster is launched with.
#[derive(Debug, Clone)]
pub struct DeploymentConfig {
    /// Users of the (gowalla-like) dataset each process regenerates.
    pub users: usize,
    /// Dataset RNG seed.
    pub seed: u64,
    /// Number of shard processes.
    pub shards: usize,
    /// Location-space partitioning policy.
    pub partitioning: Partitioning,
    /// Build a (lazy) Contraction Hierarchies index on every shard.
    pub with_ch: bool,
    /// `(queries, seed, t)` of a social-neighbour cache warmed for the
    /// deterministic workload — what AIS-Cache needs.
    pub cache_workload: Option<(usize, u64, usize)>,
    /// Extra `shard-server` flags appended verbatim (e.g. `--log info`
    /// or `--slow-query-ms 0`).
    pub extra_args: Vec<String>,
}

impl DeploymentConfig {
    /// A plain deployment (no CH, no social cache).
    pub fn new(users: usize, seed: u64, shards: usize, partitioning: Partitioning) -> Self {
        DeploymentConfig {
            users,
            seed,
            shards,
            partitioning,
            with_ch: false,
            cache_workload: None,
            extra_args: Vec::new(),
        }
    }

    /// The dataset every process of the deployment regenerates.
    pub fn dataset(&self) -> ssrq_core::GeoSocialDataset {
        DatasetConfig::gowalla_like(self.users)
            .with_seed(self.seed)
            .generate()
    }

    /// The `--partitioning` argument encoding of the policy.
    pub fn partitioning_arg(&self) -> String {
        match self.partitioning {
            Partitioning::UserHash => "hash".to_string(),
            Partitioning::SpatialGrid { cells_per_axis } => format!("spatial:{cells_per_axis}"),
        }
    }

    /// The in-process twin of the deployment: a [`ShardedEngine`] over the
    /// same dataset, partitioning and per-shard engine configuration.
    pub fn in_process_engine(&self) -> ShardedEngine {
        let mut builder = ShardedEngine::builder(self.dataset())
            .shards(self.shards)
            .partitioning(self.partitioning);
        let with_ch = self.with_ch;
        let cache = self.cache_workload;
        let full = self.dataset();
        builder = builder.configure_engines(move |mut b| {
            if with_ch {
                b = b.with_ch(ssrq_core::ChBuild::Lazy);
            }
            if let Some((queries, seed, t)) = cache {
                let workload = ssrq_data::QueryWorkload::generate(&full, queries, seed);
                b = b.cache_social_neighbors(workload.users, t);
            }
            b
        });
        builder.build().expect("in-process twin builds")
    }
}

/// The `shard-server` binary built alongside the current executable, if
/// present (the `experiments` harness and the `shard-server` live in the
/// same target directory).
pub fn sibling_shard_server() -> Option<PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let candidate = exe
        .parent()?
        .join(format!("shard-server{}", std::env::consts::EXE_SUFFIX));
    candidate.is_file().then_some(candidate)
}

/// One running `shard-server` OS process.  Dropping it kills and reaps the
/// process, so a panicking test or measurement never leaks servers.
#[derive(Debug)]
pub struct ShardProcess {
    child: Child,
    /// The endpoint the server announced (its actually-bound address).
    pub endpoint: Endpoint,
}

impl ShardProcess {
    /// Spawns shard `shard` of `config` listening on `listen` and waits
    /// for its `listening on <endpoint>` announcement.
    ///
    /// # Errors
    ///
    /// Spawn failures, or a child that exits (or prints something else)
    /// before announcing its endpoint.
    pub fn spawn(
        binary: &Path,
        listen: &Endpoint,
        shard: usize,
        config: &DeploymentConfig,
    ) -> io::Result<ShardProcess> {
        let mut command = Command::new(binary);
        command
            .arg("--listen")
            .arg(listen.to_string())
            .arg("--shard")
            .arg(shard.to_string())
            .arg("--shards")
            .arg(config.shards.to_string())
            .arg("--users")
            .arg(config.users.to_string())
            .arg("--seed")
            .arg(config.seed.to_string())
            .arg("--partitioning")
            .arg(config.partitioning_arg())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit());
        if config.with_ch {
            command.arg("--with-ch");
        }
        if let Some((queries, seed, t)) = config.cache_workload {
            command
                .arg("--cache-workload")
                .arg(format!("{queries},{seed},{t}"));
        }
        command.args(&config.extra_args);
        let mut child = command.spawn()?;
        let stdout = child.stdout.take().expect("stdout was piped");
        let mut line = String::new();
        BufReader::new(stdout).read_line(&mut line)?;
        let endpoint = line
            .trim()
            .strip_prefix("listening on ")
            .and_then(|s| Endpoint::parse(s).ok());
        let Some(endpoint) = endpoint else {
            let _ = child.kill();
            let _ = child.wait();
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "shard {shard} announced `{}` instead of its endpoint",
                    line.trim()
                ),
            ));
        };
        Ok(ShardProcess { child, endpoint })
    }

    /// Kills the server process immediately (simulates a crashed shard).
    pub fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for ShardProcess {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Launches every shard of `config` as its own OS process over Unix
/// sockets under `dir`, ready to accept connections on return.
///
/// # Errors
///
/// The first shard that fails to spawn or announce; already-started
/// processes are killed by their [`Drop`] when the partial `Vec` unwinds.
pub fn launch_cluster(
    binary: &Path,
    dir: &Path,
    config: &DeploymentConfig,
) -> io::Result<Vec<ShardProcess>> {
    std::fs::create_dir_all(dir)?;
    (0..config.shards)
        .map(|shard| {
            let listen = Endpoint::Unix(dir.join(format!("shard-{shard}.sock")));
            ShardProcess::spawn(binary, &listen, shard, config)
        })
        .collect()
}

/// One scatter mode's side of the measurement: throughput, latency and
/// wire volume of the socket coordinator driving the same queries.
#[derive(Debug, Clone)]
pub struct ScatterMeasurement {
    /// Sequential queries per second through the socket coordinator.
    pub qps: f64,
    /// Mean per-query wall time over the wire.
    pub mean_latency: Duration,
    /// Mean bytes the coordinator sent per query (requests, origin
    /// lookups, tighten frames).
    pub bytes_sent_per_query: f64,
    /// Mean bytes received per query (answers).
    pub bytes_received_per_query: f64,
    /// Mean request/response round trips per query.
    pub round_trips_per_query: f64,
    /// Mean one-way tighten frames per query (speculative mode only —
    /// counted in `bytes_sent_per_query`, never as round trips).
    pub tighten_frames_per_query: f64,
}

impl ScatterMeasurement {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("qps".into(), Json::Num(self.qps)),
            (
                "mean_latency_us".into(),
                Json::Num(self.mean_latency.as_secs_f64() * 1e6),
            ),
            (
                "bytes_sent_per_query".into(),
                Json::Num(self.bytes_sent_per_query),
            ),
            (
                "bytes_received_per_query".into(),
                Json::Num(self.bytes_received_per_query),
            ),
            (
                "round_trips_per_query".into(),
                Json::Num(self.round_trips_per_query),
            ),
            (
                "tighten_frames_per_query".into(),
                Json::Num(self.tighten_frames_per_query),
            ),
        ])
    }
}

/// In-process vs over-the-wire scatter-gather, same deployment, same
/// queries, one coordinator thread each — the remote side measured in
/// **both** scatter modes over the same connections.
#[derive(Debug, Clone)]
pub struct RpcMeasurement {
    /// Shards of the deployment.
    pub shards: usize,
    /// Queries measured.
    pub queries: usize,
    /// Sequential queries per second through the in-process
    /// [`ShardedEngine`].
    pub in_process_qps: f64,
    /// The coordinator visiting shards best-first, one at a time.
    pub remote_sequential: ScatterMeasurement,
    /// The coordinator firing all non-pre-skipped shards concurrently,
    /// pushing the tightening `f_k` as one-way frames.
    pub remote_speculative: ScatterMeasurement,
}

impl RpcMeasurement {
    /// The artifact entry for one deployment size.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("shards".into(), Json::num(self.shards)),
            ("queries".into(), Json::num(self.queries)),
            (
                "in_process".into(),
                Json::Obj(vec![("qps".into(), Json::Num(self.in_process_qps))]),
            ),
            ("remote_sequential".into(), self.remote_sequential.to_json()),
            (
                "remote_speculative".into(),
                self.remote_speculative.to_json(),
            ),
        ])
    }
}

/// Drives `requests` one at a time through the coordinator in `mode`,
/// checking every answer against `expected` as it goes.
fn measure_mode(
    remote: &mut RemoteShardedEngine,
    mode: ScatterMode,
    requests: &[QueryRequest],
    expected: &[QueryResult],
) -> ScatterMeasurement {
    remote.set_scatter_mode(mode);
    let mut bytes_sent = 0usize;
    let mut bytes_received = 0usize;
    let mut round_trips = 0usize;
    let mut tighten_frames = 0usize;
    let started = Instant::now();
    for (request, expected) in requests.iter().zip(expected) {
        let result = remote.query(request).expect("remote query succeeds");
        assert!(
            result.same_users_and_scores(expected, 1e-9),
            "remote {mode} ranked list diverged from the in-process engine (user {})",
            request.user()
        );
        bytes_sent += result.stats.bytes_sent;
        bytes_received += result.stats.bytes_received;
        round_trips += result.stats.wire_round_trips;
        tighten_frames += result.stats.tighten_frames;
    }
    let elapsed = started.elapsed();
    let n = requests.len();
    ScatterMeasurement {
        qps: n as f64 / elapsed.as_secs_f64().max(1e-9),
        mean_latency: elapsed / n as u32,
        bytes_sent_per_query: bytes_sent as f64 / n as f64,
        bytes_received_per_query: bytes_received as f64 / n as f64,
        round_trips_per_query: round_trips as f64 / n as f64,
        tighten_frames_per_query: tighten_frames as f64 / n as f64,
    }
}

/// Runs `requests` sequentially through both deployments and measures
/// throughput, per-query wire latency and wire volume — the remote
/// coordinator once per [`ScatterMode`].  Every remote answer in every
/// mode is checked against the in-process one (`same_users_and_scores` at
/// 1e-9), so the measurement doubles as an agreement smoke test.
///
/// # Panics
///
/// When a query fails on either side or the ranked lists disagree — a
/// measurement over diverging deployments would be meaningless.
pub fn measure_rpc(
    local: &ShardedEngine,
    remote: &mut RemoteShardedEngine,
    requests: &[QueryRequest],
) -> RpcMeasurement {
    assert!(!requests.is_empty(), "nothing to measure");
    let local_started = Instant::now();
    let expected: Vec<QueryResult> = requests
        .iter()
        .map(|r| local.run(r).expect("in-process query succeeds"))
        .collect();
    let local_elapsed = local_started.elapsed();

    let remote_sequential = measure_mode(remote, ScatterMode::Sequential, requests, &expected);
    let remote_speculative = measure_mode(remote, ScatterMode::Speculative, requests, &expected);

    let n = requests.len();
    RpcMeasurement {
        shards: remote.shard_count(),
        queries: n,
        in_process_qps: n as f64 / local_elapsed.as_secs_f64().max(1e-9),
        remote_sequential,
        remote_speculative,
    }
}

/// Validates a re-parsed `BENCH_rpc.json` document: schema shape, at least
/// one deployment, positive throughputs, **both** scatter modes recorded,
/// and wire volume consistent with a socket deployment (every query
/// crossed the wire at least once; tighten frames only in speculative
/// mode).
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate_rpc_report(report: &Json) -> Result<(), String> {
    let queries = report
        .get("queries")
        .and_then(Json::as_usize)
        .ok_or("report lacks a numeric `queries`")?;
    if queries == 0 {
        return Err("report measured zero queries".into());
    }
    let deployments = report
        .get("deployments")
        .and_then(Json::as_array)
        .ok_or("report lacks a `deployments` array")?;
    if deployments.is_empty() {
        return Err("report has no deployments".into());
    }
    for (index, entry) in deployments.iter().enumerate() {
        let shards = entry
            .get("shards")
            .and_then(Json::as_usize)
            .ok_or(format!("deployment {index} lacks `shards`"))?;
        if shards == 0 {
            return Err(format!("deployment {index} claims zero shards"));
        }
        let in_process_qps = entry
            .get("in_process")
            .and_then(|o| o.get("qps"))
            .and_then(Json::as_f64)
            .ok_or(format!("deployment {index} lacks `in_process.qps`"))?;
        if !in_process_qps.is_finite() || in_process_qps <= 0.0 {
            return Err(format!("deployment {index} reports a non-positive q/s"));
        }
        for mode in ["remote_sequential", "remote_speculative"] {
            let remote = entry
                .get(mode)
                .ok_or(format!("deployment {index} lacks `{mode}`"))?;
            let remote_qps = remote
                .get("qps")
                .and_then(Json::as_f64)
                .ok_or(format!("deployment {index} lacks `{mode}.qps`"))?;
            if !remote_qps.is_finite() || remote_qps <= 0.0 {
                return Err(format!("deployment {index} reports a non-positive q/s"));
            }
            let round_trips = remote
                .get("round_trips_per_query")
                .and_then(Json::as_f64)
                .ok_or(format!(
                    "deployment {index} lacks `{mode}.round_trips_per_query`"
                ))?;
            if round_trips < 1.0 {
                return Err(format!(
                    "deployment {index}: {round_trips} wire round trips per query — a socket \
                     deployment answers every query over the wire at least once"
                ));
            }
            for key in ["bytes_sent_per_query", "bytes_received_per_query"] {
                let bytes = remote
                    .get(key)
                    .and_then(Json::as_f64)
                    .ok_or(format!("deployment {index} lacks `{mode}.{key}`"))?;
                if !bytes.is_finite() || bytes <= 0.0 {
                    return Err(format!(
                        "deployment {index}: `{mode}.{key}` must be positive"
                    ));
                }
            }
            let tighten = remote
                .get("tighten_frames_per_query")
                .and_then(Json::as_f64)
                .ok_or(format!(
                    "deployment {index} lacks `{mode}.tighten_frames_per_query`"
                ))?;
            if !tighten.is_finite() || tighten < 0.0 {
                return Err(format!(
                    "deployment {index}: `{mode}.tighten_frames_per_query` must be non-negative"
                ));
            }
            if mode == "remote_sequential" && tighten != 0.0 {
                return Err(format!(
                    "deployment {index}: the sequential scatter sends no tighten frames, \
                     yet {tighten} per query were recorded"
                ));
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Json {
        let measurement = RpcMeasurement {
            shards: 2,
            queries: 8,
            in_process_qps: 1000.0,
            remote_sequential: ScatterMeasurement {
                qps: 400.0,
                mean_latency: Duration::from_micros(2500),
                bytes_sent_per_query: 120.0,
                bytes_received_per_query: 900.0,
                round_trips_per_query: 2.5,
                tighten_frames_per_query: 0.0,
            },
            remote_speculative: ScatterMeasurement {
                qps: 650.0,
                mean_latency: Duration::from_micros(1540),
                bytes_sent_per_query: 150.0,
                bytes_received_per_query: 950.0,
                round_trips_per_query: 3.0,
                tighten_frames_per_query: 1.25,
            },
        };
        Json::Obj(vec![
            ("experiment".into(), Json::str("rpc")),
            ("queries".into(), Json::num(8)),
            ("deployments".into(), Json::Arr(vec![measurement.to_json()])),
        ])
    }

    #[test]
    fn a_measurement_renders_to_a_validating_report() {
        let report = sample_report();
        let reparsed = Json::parse(&report.render()).expect("report re-parses");
        validate_rpc_report(&reparsed).expect("report validates");
    }

    #[test]
    fn validation_rejects_wire_free_and_malformed_reports() {
        assert!(validate_rpc_report(&Json::Obj(vec![])).is_err());

        let mut no_deployments = sample_report();
        if let Json::Obj(members) = &mut no_deployments {
            members.retain(|(k, _)| k != "deployments");
        }
        assert!(validate_rpc_report(&no_deployments).is_err());

        fn patch(report: &mut Json, mode: &str, key: &str, value: Json) {
            let Json::Obj(members) = report else {
                panic!("report is an object")
            };
            let deployments = members
                .iter_mut()
                .find(|(k, _)| k == "deployments")
                .map(|(_, v)| v)
                .unwrap();
            let Json::Arr(entries) = deployments else {
                panic!("deployments is an array")
            };
            let Json::Obj(entry) = &mut entries[0] else {
                panic!("deployment is an object")
            };
            let remote = entry.iter_mut().find(|(k, _)| k.as_str() == mode).unwrap();
            let Json::Obj(remote) = &mut remote.1 else {
                panic!("{mode} is an object")
            };
            for (k, v) in remote.iter_mut() {
                if k == key {
                    *v = value.clone();
                }
            }
        }

        // A "remote" deployment that never crossed the wire is a lie.
        let mut wire_free = sample_report();
        patch(
            &mut wire_free,
            "remote_sequential",
            "round_trips_per_query",
            Json::Num(0.0),
        );
        let error = validate_rpc_report(&wire_free).unwrap_err();
        assert!(error.contains("round trips"), "unexpected error: {error}");

        // Tighten frames in sequential mode would mean the accounting (or
        // the scatter) is broken.
        let mut leaky = sample_report();
        patch(
            &mut leaky,
            "remote_sequential",
            "tighten_frames_per_query",
            Json::Num(0.5),
        );
        let error = validate_rpc_report(&leaky).unwrap_err();
        assert!(error.contains("tighten"), "unexpected error: {error}");

        // Both scatter modes must be recorded.
        let mut one_mode = sample_report();
        if let Json::Obj(members) = &mut one_mode {
            let deployments = members
                .iter_mut()
                .find(|(k, _)| k == "deployments")
                .map(|(_, v)| v)
                .unwrap();
            if let Json::Arr(entries) = deployments {
                if let Json::Obj(entry) = &mut entries[0] {
                    entry.retain(|(k, _)| k != "remote_speculative");
                }
            }
        }
        let error = validate_rpc_report(&one_mode).unwrap_err();
        assert!(
            error.contains("remote_speculative"),
            "unexpected error: {error}"
        );
    }

    #[test]
    fn partitioning_args_round_trip_the_policies() {
        let hash = DeploymentConfig::new(100, 1, 2, Partitioning::UserHash);
        assert_eq!(hash.partitioning_arg(), "hash");
        let spatial =
            DeploymentConfig::new(100, 1, 2, Partitioning::SpatialGrid { cells_per_axis: 16 });
        assert_eq!(spatial.partitioning_arg(), "spatial:16");
    }
}
