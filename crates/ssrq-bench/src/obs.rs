//! End-to-end observability measurement behind `experiments -- obs`
//! (persisted to `BENCH_obs.json`): traced queries over a real
//! multi-process deployment, trace-id propagation checked against every
//! shard server's remotely-snapshotted span log, metric registries
//! validated for internal consistency, and the instrumentation overhead
//! bounded deterministically.
//!
//! The overhead check is deliberately *not* an A/B throughput comparison
//! (those are noise-bound in CI): instead the cost of one metric
//! operation is calibrated on this machine, multiplied by a generous
//! upper bound on operations per query, and compared against the measured
//! mean query latency.  The acceptance bar is the issue's: instrumenting
//! the sequential RPC path must cost under 2% of a query.

use crate::json::Json;
use ssrq_core::QueryRequest;
use ssrq_net::{NetError, RemoteShardedEngine};
use ssrq_obs::{MetricValue, ObsReport, Registry};
use std::time::{Duration, Instant};

/// Observations per calibration loop: enough that per-call jitter
/// averages out, cheap enough to run in every CI smoke.
const CALIBRATION_OPS: u64 = 1_000_000;

/// Every histogram sample in `report`, checked for internal consistency
/// (bucket counts summing to the total, non-zero sums for non-zero
/// observations).
fn histograms_consistent(report: &ObsReport) -> bool {
    report.metrics.iter().all(|sample| match &sample.value {
        MetricValue::Histogram(snapshot) => snapshot.is_consistent(),
        _ => true,
    })
}

/// One observability run over a live deployment: trace propagation,
/// registry consistency, slow-query capture and instrumentation cost.
#[derive(Debug, Clone)]
pub struct ObsMeasurement {
    /// Shards of the deployment.
    pub shards: usize,
    /// Traced queries driven.
    pub queries: usize,
    /// Queries whose trace id was found, bit-identical, in **every**
    /// shard's remotely-snapshotted span log.
    pub trace_coverage: usize,
    /// `ssrq_coordinator_queries_total` after the run.
    pub coordinator_queries: u64,
    /// `ssrq_server_queries_total{shard=s}` per shard, from the remote
    /// snapshots.
    pub server_queries: Vec<u64>,
    /// Every histogram in every snapshot (coordinator and shards) was
    /// internally consistent.
    pub histograms_consistent: bool,
    /// Mean traced-query wall time (from the coordinator span trees).
    pub mean_query_latency: Duration,
    /// Offenders retained by the coordinator's slow-query log.
    pub slow_queries: usize,
    /// Calibrated cost of one histogram observation on this machine.
    pub metrics_ns_per_op: f64,
    /// Generous upper bound on metric operations per sequential query.
    pub instrument_ops_per_query: u64,
    /// `metrics_ns_per_op * instrument_ops_per_query / mean query ns` —
    /// the deterministic stand-in for the "< 2% qps regression" bar.
    pub overhead_fraction: f64,
    /// One rendered coordinator span tree (the last query's).
    pub sample_trace: String,
}

/// Drives every request through [`RemoteShardedEngine::query_traced`],
/// then snapshots the coordinator and every shard server and
/// cross-checks: each trace id present in each shard's span log, query
/// counters covering the workload, histograms consistent, and the
/// calibrated instrumentation cost under the mean query latency.
///
/// Requests should pin an origin and use a large `k` so the threshold
/// skips no shard — a skipped shard never sees the trace id, which would
/// read as a propagation failure.
///
/// # Errors
///
/// The first failing traced query or metrics snapshot.
///
/// # Panics
///
/// With more requests than the servers' span-log capacity (256), where
/// early trace ids would be legitimately evicted.
pub fn measure_obs(
    remote: &RemoteShardedEngine,
    requests: &[QueryRequest],
) -> Result<ObsMeasurement, NetError> {
    assert!(!requests.is_empty(), "nothing to measure");
    assert!(
        requests.len() <= 256,
        "more queries than the span-log capacity would evict early trace ids"
    );
    let shards = remote.shard_count();
    let mut trace_ids = Vec::with_capacity(requests.len());
    let mut total_ns = 0u64;
    let mut sample_trace = String::new();
    for request in requests {
        let (_result, _stats, spans) = remote.query_traced(request)?;
        total_ns += spans.total_ns();
        sample_trace = spans.render();
        trace_ids.push(spans.trace_id);
    }

    let shard_reports: Vec<ObsReport> = (0..shards)
        .map(|s| remote.remote_metrics(s))
        .collect::<Result<_, _>>()?;
    let trace_coverage = trace_ids
        .iter()
        .filter(|&&id| shard_reports.iter().all(|r| r.has_trace(id)))
        .count();

    let coordinator = remote.coordinator_report();
    let coordinator_queries = coordinator
        .counter("ssrq_coordinator_queries_total", &[])
        .unwrap_or(0);
    let server_queries: Vec<u64> = shard_reports
        .iter()
        .enumerate()
        .map(|(s, report)| {
            let shard = s.to_string();
            report
                .counter("ssrq_server_queries_total", &[("shard", &shard)])
                .unwrap_or(0)
        })
        .collect();
    let consistent =
        histograms_consistent(&coordinator) && shard_reports.iter().all(histograms_consistent);

    let mean_query_latency = Duration::from_nanos(total_ns / requests.len() as u64);
    let metrics_ns_per_op = calibrate_metric_op();
    // A generous bound: the coordinator's counters/histograms plus, per
    // shard, the server's queue/query/outcome series and the engine's
    // per-algorithm histograms — the real paths record far fewer.
    let instrument_ops_per_query = 32 + 32 * shards as u64;
    let overhead_fraction = metrics_ns_per_op * instrument_ops_per_query as f64
        / (mean_query_latency.as_nanos() as f64).max(1.0);

    Ok(ObsMeasurement {
        shards,
        queries: requests.len(),
        trace_coverage,
        coordinator_queries,
        server_queries,
        histograms_consistent: consistent,
        mean_query_latency,
        slow_queries: remote.slow_queries().len(),
        metrics_ns_per_op,
        instrument_ops_per_query,
        overhead_fraction,
        sample_trace,
    })
}

/// Calibrates one histogram observation (the most expensive metric op on
/// the query path) on a private registry: nanoseconds per
/// `Histogram::observe`.
pub fn calibrate_metric_op() -> f64 {
    let registry = Registry::default();
    let histogram = registry.histogram("calibration_ns", &[]);
    let started = Instant::now();
    for i in 0..CALIBRATION_OPS {
        // Vary the value so every bit-length bucket path is exercised.
        histogram.observe(i.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    }
    let elapsed = started.elapsed();
    assert_eq!(histogram.count(), CALIBRATION_OPS);
    elapsed.as_nanos() as f64 / CALIBRATION_OPS as f64
}

impl ObsMeasurement {
    /// The artifact body persisted as `BENCH_obs.json`.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("experiment".into(), Json::str("obs")),
            ("shards".into(), Json::num(self.shards)),
            ("queries".into(), Json::num(self.queries)),
            ("trace_coverage".into(), Json::num(self.trace_coverage)),
            (
                "coordinator_queries".into(),
                Json::Num(self.coordinator_queries as f64),
            ),
            (
                "server_queries".into(),
                Json::Arr(
                    self.server_queries
                        .iter()
                        .map(|&n| Json::Num(n as f64))
                        .collect(),
                ),
            ),
            (
                "histograms_consistent".into(),
                Json::Bool(self.histograms_consistent),
            ),
            (
                "mean_query_us".into(),
                Json::Num(self.mean_query_latency.as_secs_f64() * 1e6),
            ),
            ("slow_queries".into(), Json::num(self.slow_queries)),
            (
                "metrics_ns_per_op".into(),
                Json::Num(self.metrics_ns_per_op),
            ),
            (
                "instrument_ops_per_query".into(),
                Json::Num(self.instrument_ops_per_query as f64),
            ),
            (
                "overhead_fraction".into(),
                Json::Num(self.overhead_fraction),
            ),
            ("sample_trace".into(), Json::str(self.sample_trace.clone())),
        ])
    }
}

/// Validates a re-parsed `BENCH_obs.json`: non-zero query counts on every
/// layer, full trace coverage, consistent histograms, a captured slow
/// query, and instrumentation overhead under the 2% bar.
///
/// # Errors
///
/// A description of the first violated invariant.
pub fn validate_obs_report(report: &Json) -> Result<(), String> {
    let queries = report
        .get("queries")
        .and_then(Json::as_usize)
        .ok_or("report lacks a numeric `queries`")?;
    if queries == 0 {
        return Err("report measured zero queries".into());
    }
    let shards = report
        .get("shards")
        .and_then(Json::as_usize)
        .ok_or("report lacks a numeric `shards`")?;
    if shards == 0 {
        return Err("report claims zero shards".into());
    }
    let coverage = report
        .get("trace_coverage")
        .and_then(Json::as_usize)
        .ok_or("report lacks `trace_coverage`")?;
    if coverage != queries {
        return Err(format!(
            "only {coverage} of {queries} trace ids reached every shard's span log"
        ));
    }
    let coordinator = report
        .get("coordinator_queries")
        .and_then(Json::as_usize)
        .ok_or("report lacks `coordinator_queries`")?;
    if coordinator < queries {
        return Err(format!(
            "the coordinator counted {coordinator} queries for a {queries}-query workload"
        ));
    }
    let servers = report
        .get("server_queries")
        .and_then(Json::as_array)
        .ok_or("report lacks a `server_queries` array")?;
    if servers.len() != shards {
        return Err(format!(
            "{} per-shard counts for {shards} shards",
            servers.len()
        ));
    }
    for (shard, count) in servers.iter().enumerate() {
        let count = count
            .as_usize()
            .ok_or(format!("shard {shard} count is not a number"))?;
        if count == 0 {
            return Err(format!("shard {shard} served zero queries"));
        }
    }
    if report.get("histograms_consistent") != Some(&Json::Bool(true)) {
        return Err("a histogram snapshot was internally inconsistent".into());
    }
    let mean_us = report
        .get("mean_query_us")
        .and_then(Json::as_f64)
        .ok_or("report lacks `mean_query_us`")?;
    if !mean_us.is_finite() || mean_us <= 0.0 {
        return Err("mean query latency must be positive".into());
    }
    let slow = report
        .get("slow_queries")
        .and_then(Json::as_usize)
        .ok_or("report lacks `slow_queries`")?;
    if slow == 0 {
        return Err("the zero-threshold slow-query log captured nothing".into());
    }
    let overhead = report
        .get("overhead_fraction")
        .and_then(Json::as_f64)
        .ok_or("report lacks `overhead_fraction`")?;
    if !overhead.is_finite() || overhead < 0.0 {
        return Err("overhead fraction must be a non-negative number".into());
    }
    if overhead >= 0.02 {
        return Err(format!(
            "instrumentation overhead bound {:.3}% breaches the 2% bar",
            overhead * 100.0
        ));
    }
    let sample = report
        .get("sample_trace")
        .and_then(Json::as_str)
        .ok_or("report lacks a `sample_trace`")?;
    if !sample.contains("coordinator_query") {
        return Err("the sample trace lacks the coordinator root span".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> Json {
        let measurement = ObsMeasurement {
            shards: 2,
            queries: 8,
            trace_coverage: 8,
            coordinator_queries: 8,
            server_queries: vec![8, 8],
            histograms_consistent: true,
            mean_query_latency: Duration::from_micros(900),
            slow_queries: 8,
            metrics_ns_per_op: 20.0,
            instrument_ops_per_query: 96,
            overhead_fraction: 20.0 * 96.0 / 900_000.0,
            sample_trace: "trace 0x...\n  coordinator_query 0us..900us\n".into(),
        };
        measurement.to_json()
    }

    #[test]
    fn a_measurement_renders_to_a_validating_report() {
        let reparsed = Json::parse(&sample_report().render()).expect("report re-parses");
        validate_obs_report(&reparsed).expect("report validates");
    }

    #[test]
    fn validation_rejects_broken_reports() {
        fn patch(report: &mut Json, key: &str, value: Json) {
            let Json::Obj(members) = report else {
                panic!("report is an object")
            };
            for (k, v) in members.iter_mut() {
                if k == key {
                    *v = value.clone();
                }
            }
        }

        assert!(validate_obs_report(&Json::Obj(vec![])).is_err());

        // A trace id that never reached some shard's span log.
        let mut partial = sample_report();
        patch(&mut partial, "trace_coverage", Json::num(7));
        let error = validate_obs_report(&partial).unwrap_err();
        assert!(error.contains("trace ids"), "unexpected error: {error}");

        // A shard that served nothing saw no queries at all.
        let mut idle = sample_report();
        patch(
            &mut idle,
            "server_queries",
            Json::Arr(vec![Json::num(8), Json::num(0)]),
        );
        let error = validate_obs_report(&idle).unwrap_err();
        assert!(error.contains("zero queries"), "unexpected error: {error}");

        // An inconsistent histogram means the registry miscounted.
        let mut torn = sample_report();
        patch(&mut torn, "histograms_consistent", Json::Bool(false));
        assert!(validate_obs_report(&torn).is_err());

        // Instrumentation at or above the 2% bar fails the acceptance
        // criterion.
        let mut heavy = sample_report();
        patch(&mut heavy, "overhead_fraction", Json::Num(0.02));
        let error = validate_obs_report(&heavy).unwrap_err();
        assert!(error.contains("2%"), "unexpected error: {error}");
    }

    #[test]
    fn the_calibrated_metric_op_is_cheap() {
        let ns = calibrate_metric_op();
        assert!(ns.is_finite() && ns > 0.0);
        // An atomic add plus a bit-length bucket index: if one observation
        // costs a microsecond, something is deeply wrong.
        assert!(ns < 1_000.0, "one metric op costs {ns}ns");
    }
}
