use crate::{hash_map_heap_bytes, ItemId, Point, Rect, SpatialError};
use std::collections::HashMap;

/// Coordinates of a grid cell (column, row), both zero-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CellCoord {
    /// Column index (along x).
    pub cx: u32,
    /// Row index (along y).
    pub cy: u32,
}

impl CellCoord {
    /// Creates a new cell coordinate.
    pub const fn new(cx: u32, cy: u32) -> Self {
        CellCoord { cx, cy }
    }
}

/// A single-level regular grid over a bounding rectangle.
///
/// This is the index used by the Spatial First Approach (SPA) and the
/// spatial search of TSA (§4.1): the paper picks a regular grid with
/// branch-and-bound NN retrieval as "the most suitable \[combination\] for
/// dynamic spatial data kept in main memory".  Location updates are O(1)
/// amortized: remove the item from its old cell, append it to the new one.
///
/// Both per-cell buckets and the position table are stored sparsely, so the
/// grid's heap footprint scales with the number of stored items rather than
/// with the `side × side` geometry or the largest item id.  A shard holding
/// few (or no) residents of a large deployment pays only for what it stores.
#[derive(Debug, Clone)]
pub struct UniformGrid {
    bounds: Rect,
    side: u32,
    cell_w: f64,
    cell_h: f64,
    /// Items of each **occupied** cell, keyed by flat cell index.  Empty
    /// cells have no entry; buckets are removed as they empty.
    cells: HashMap<u64, Vec<ItemId>>,
    /// Position of each stored item.  Sparse: ids are global in a
    /// partitioned deployment, and a thin shard must not pay for a dense
    /// table up to the maximum resident id.
    positions: HashMap<ItemId, Point>,
}

impl UniformGrid {
    /// Creates an empty grid with `side × side` cells covering `bounds`.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::InvalidConfiguration`] if `side` is zero, the
    /// bounds are degenerate (zero width or height) or not finite.
    pub fn new(bounds: Rect, side: u32) -> Result<Self, SpatialError> {
        if side == 0 {
            return Err(SpatialError::InvalidConfiguration(
                "grid side must be at least 1".into(),
            ));
        }
        if !(bounds.min.is_finite() && bounds.max.is_finite()) {
            return Err(SpatialError::InvalidConfiguration(
                "grid bounds must be finite".into(),
            ));
        }
        if bounds.width() <= 0.0 || bounds.height() <= 0.0 {
            return Err(SpatialError::InvalidConfiguration(
                "grid bounds must have positive width and height".into(),
            ));
        }
        Ok(UniformGrid {
            bounds,
            side,
            cell_w: bounds.width() / side as f64,
            cell_h: bounds.height() / side as f64,
            cells: HashMap::new(),
            positions: HashMap::new(),
        })
    }

    /// Builds a grid from an iterator of `(id, point)` pairs.
    ///
    /// Points outside `bounds` are clamped onto the boundary (the SSRQ
    /// datasets normalize all locations into the unit square first, so this
    /// only matters for numerical edge cases).
    pub fn bulk_load(
        bounds: Rect,
        side: u32,
        items: impl IntoIterator<Item = (ItemId, Point)>,
    ) -> Result<Self, SpatialError> {
        let mut grid = UniformGrid::new(bounds, side)?;
        for (id, p) in items {
            grid.insert(id, p);
        }
        Ok(grid)
    }

    /// Bounding rectangle covered by the grid.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Number of cells per axis.
    pub fn side(&self) -> u32 {
        self.side
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// Returns `true` when no item is stored.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// Number of cells that currently hold at least one item.
    pub fn occupied_cell_count(&self) -> usize {
        self.cells.len()
    }

    /// Current position of `id`, if it is stored in the grid.
    pub fn position(&self, id: ItemId) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    /// Approximate heap footprint of the grid in bytes (cell buckets plus
    /// the dense position table).  The grid indexes *locations*, so in a
    /// partitioned deployment it is per-shard state — unlike the graph-only
    /// indexes, which are shared.
    pub fn approx_heap_bytes(&self) -> usize {
        hash_map_heap_bytes(&self.cells)
            + self
                .cells
                .values()
                .map(|c| c.capacity() * std::mem::size_of::<ItemId>())
                .sum::<usize>()
            + hash_map_heap_bytes(&self.positions)
    }

    /// Inserts `id` at `point`, or moves it there if it is already stored.
    ///
    /// The point is clamped into the grid bounds.
    pub fn insert(&mut self, id: ItemId, point: Point) {
        let point = self.clamp(point);
        if self.position(id).is_some() {
            // Re-insertion acts as an update.
            self.update(id, point).expect("item verified present");
            return;
        }
        let idx = self.cell_index(self.cell_of(point));
        self.cells.entry(idx).or_default().push(id);
        self.positions.insert(id, point);
    }

    /// Removes `id` from the grid.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::UnknownItem`] if the item is not stored.
    pub fn remove(&mut self, id: ItemId) -> Result<Point, SpatialError> {
        let point = self.position(id).ok_or(SpatialError::UnknownItem(id))?;
        let idx = self.cell_index(self.cell_of(point));
        self.remove_from_bucket(idx, id);
        self.positions.remove(&id);
        if self.positions.is_empty() {
            // A fully drained grid (e.g. a shard whose residents were all
            // migrated away) must genuinely return to its empty footprint,
            // not keep the old capacity around.
            self.cells = HashMap::new();
            self.positions = HashMap::new();
        }
        Ok(point)
    }

    /// Removes `id` from an occupied cell bucket, dropping the bucket
    /// entirely when it empties (vacated cells go back to costing nothing).
    fn remove_from_bucket(&mut self, idx: u64, id: ItemId) {
        if let Some(cell) = self.cells.get_mut(&idx) {
            if let Some(pos) = cell.iter().position(|&x| x == id) {
                cell.swap_remove(pos);
            }
            if cell.is_empty() {
                self.cells.remove(&idx);
            }
        }
    }

    /// Moves `id` to `point`, updating cell membership only when the item
    /// crosses a cell boundary (as the paper notes, an intra-cell move needs
    /// no index maintenance).
    ///
    /// Returns the pair `(old_cell, new_cell)` so callers (such as the AIS
    /// index) can maintain per-cell aggregates.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::UnknownItem`] if the item is not stored.
    pub fn update(
        &mut self,
        id: ItemId,
        point: Point,
    ) -> Result<(CellCoord, CellCoord), SpatialError> {
        let point = self.clamp(point);
        let old = self.position(id).ok_or(SpatialError::UnknownItem(id))?;
        let old_cell = self.cell_of(old);
        let new_cell = self.cell_of(point);
        if old_cell != new_cell {
            let old_idx = self.cell_index(old_cell);
            self.remove_from_bucket(old_idx, id);
            let new_idx = self.cell_index(new_cell);
            self.cells.entry(new_idx).or_default().push(id);
        }
        self.positions.insert(id, point);
        Ok((old_cell, new_cell))
    }

    /// The cell containing `point` (clamped into bounds).
    pub fn cell_of(&self, point: Point) -> CellCoord {
        let p = self.clamp(point);
        let cx = ((p.x - self.bounds.min.x) / self.cell_w) as u32;
        let cy = ((p.y - self.bounds.min.y) / self.cell_h) as u32;
        CellCoord::new(cx.min(self.side - 1), cy.min(self.side - 1))
    }

    /// Spatial extent of a cell.
    pub fn cell_rect(&self, cell: CellCoord) -> Rect {
        let x0 = self.bounds.min.x + cell.cx as f64 * self.cell_w;
        let y0 = self.bounds.min.y + cell.cy as f64 * self.cell_h;
        Rect::new(
            Point::new(x0, y0),
            Point::new(x0 + self.cell_w, y0 + self.cell_h),
        )
    }

    /// Items stored in a cell (empty slice for an unoccupied cell).
    pub fn cell_items(&self, cell: CellCoord) -> &[ItemId] {
        self.cells
            .get(&self.cell_index(cell))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over all cell coordinates of the grid.
    pub fn cell_coords(&self) -> impl Iterator<Item = CellCoord> + '_ {
        let side = self.side;
        (0..side).flat_map(move |cy| (0..side).map(move |cx| CellCoord::new(cx, cy)))
    }

    /// Coordinates of the cells that currently hold at least one item, in
    /// unspecified order.  Searches that seed from the occupied cells (such
    /// as [`crate::IncrementalNn`]) stay proportional to occupancy instead
    /// of scanning the whole `side × side` geometry.
    pub fn occupied_cell_coords(&self) -> impl Iterator<Item = CellCoord> + '_ {
        let side = self.side as u64;
        self.cells
            .keys()
            .map(move |&idx| CellCoord::new((idx % side) as u32, (idx / side) as u32))
    }

    /// Iterates over all `(id, point)` pairs stored in the grid, in
    /// unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, Point)> + '_ {
        self.positions.iter().map(|(&id, &p)| (id, p))
    }

    /// All items whose position lies inside `range` (boundary inclusive).
    pub fn range_query(&self, range: Rect) -> Vec<ItemId> {
        let mut out = Vec::new();
        let lo = self.cell_of(range.min);
        let hi = self.cell_of(range.max);
        for cy in lo.cy..=hi.cy {
            for cx in lo.cx..=hi.cx {
                for &id in self.cell_items(CellCoord::new(cx, cy)) {
                    let p = self.positions[&id];
                    if range.contains(p) {
                        out.push(id);
                    }
                }
            }
        }
        out
    }

    pub(crate) fn cell_index(&self, cell: CellCoord) -> u64 {
        cell.cy as u64 * self.side as u64 + cell.cx as u64
    }

    fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.bounds.min.x, self.bounds.max.x),
            p.y.clamp(self.bounds.min.y, self.bounds.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_grid(side: u32) -> UniformGrid {
        UniformGrid::new(Rect::unit(), side).unwrap()
    }

    #[test]
    fn rejects_invalid_configuration() {
        assert!(matches!(
            UniformGrid::new(Rect::unit(), 0),
            Err(SpatialError::InvalidConfiguration(_))
        ));
        let degenerate = Rect::new(Point::new(0.0, 0.0), Point::new(0.0, 1.0));
        assert!(UniformGrid::new(degenerate, 4).is_err());
        let nan = Rect::new(Point::new(f64::NAN, 0.0), Point::new(1.0, 1.0));
        assert!(UniformGrid::new(nan, 4).is_err());
    }

    #[test]
    fn insert_and_lookup() {
        let mut g = unit_grid(4);
        g.insert(7, Point::new(0.1, 0.9));
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(7), Some(Point::new(0.1, 0.9)));
        assert_eq!(g.position(8), None);
        let cell = g.cell_of(Point::new(0.1, 0.9));
        assert_eq!(g.cell_items(cell), &[7]);
    }

    #[test]
    fn reinsert_moves_item() {
        let mut g = unit_grid(4);
        g.insert(1, Point::new(0.1, 0.1));
        g.insert(1, Point::new(0.9, 0.9));
        assert_eq!(g.len(), 1);
        assert_eq!(g.position(1), Some(Point::new(0.9, 0.9)));
        let old_cell = g.cell_of(Point::new(0.1, 0.1));
        assert!(g.cell_items(old_cell).is_empty());
    }

    #[test]
    fn remove_clears_cell_and_position() {
        let mut g = unit_grid(4);
        g.insert(1, Point::new(0.5, 0.5));
        let p = g.remove(1).unwrap();
        assert_eq!(p, Point::new(0.5, 0.5));
        assert!(g.is_empty());
        assert!(matches!(g.remove(1), Err(SpatialError::UnknownItem(1))));
    }

    #[test]
    fn update_within_cell_keeps_membership() {
        let mut g = unit_grid(2);
        g.insert(3, Point::new(0.1, 0.1));
        let (old, new) = g.update(3, Point::new(0.2, 0.2)).unwrap();
        assert_eq!(old, new);
        assert_eq!(g.position(3), Some(Point::new(0.2, 0.2)));
    }

    #[test]
    fn update_across_cells_moves_membership() {
        let mut g = unit_grid(2);
        g.insert(3, Point::new(0.1, 0.1));
        let (old, new) = g.update(3, Point::new(0.9, 0.9)).unwrap();
        assert_ne!(old, new);
        assert!(g.cell_items(old).is_empty());
        assert_eq!(g.cell_items(new), &[3]);
    }

    #[test]
    fn update_unknown_item_errors() {
        let mut g = unit_grid(2);
        assert!(g.update(10, Point::new(0.5, 0.5)).is_err());
    }

    #[test]
    fn points_on_max_boundary_fall_in_last_cell() {
        let g = unit_grid(5);
        let cell = g.cell_of(Point::new(1.0, 1.0));
        assert_eq!(cell, CellCoord::new(4, 4));
    }

    #[test]
    fn out_of_bounds_points_are_clamped() {
        let mut g = unit_grid(5);
        g.insert(1, Point::new(2.0, -1.0));
        assert_eq!(g.position(1), Some(Point::new(1.0, 0.0)));
    }

    #[test]
    fn cell_rects_tile_the_bounds() {
        let g = unit_grid(3);
        let total_area: f64 = g.cell_coords().map(|c| g.cell_rect(c).area()).sum();
        assert!((total_area - 1.0).abs() < 1e-9);
    }

    #[test]
    fn bulk_load_and_iter() {
        let pts = vec![
            (0, Point::new(0.1, 0.1)),
            (1, Point::new(0.9, 0.2)),
            (2, Point::new(0.5, 0.8)),
        ];
        let g = UniformGrid::bulk_load(Rect::unit(), 4, pts.clone()).unwrap();
        assert_eq!(g.len(), 3);
        let mut collected: Vec<_> = g.iter().collect();
        collected.sort_by_key(|(id, _)| *id);
        assert_eq!(collected, pts);
    }

    #[test]
    fn range_query_finds_exactly_contained_points() {
        let pts = (0..100).map(|i| {
            let x = (i % 10) as f64 / 10.0 + 0.05;
            let y = (i / 10) as f64 / 10.0 + 0.05;
            (i as ItemId, Point::new(x, y))
        });
        let g = UniformGrid::bulk_load(Rect::unit(), 7, pts).unwrap();
        let range = Rect::new(Point::new(0.0, 0.0), Point::new(0.5, 0.5));
        let mut found = g.range_query(range);
        found.sort_unstable();
        let expected: Vec<ItemId> = (0..100)
            .filter(|i| {
                let x = (i % 10) as f64 / 10.0 + 0.05;
                let y = (i / 10) as f64 / 10.0 + 0.05;
                x <= 0.5 && y <= 0.5
            })
            .map(|i| i as ItemId)
            .collect();
        assert_eq!(found, expected);
    }
}
