use std::fmt;

/// A point in the 2-D Euclidean plane.
///
/// User locations in the SSRQ problem setting are points in Euclidean space;
/// the ranking function uses the (normalized) Euclidean distance between the
/// query user and every candidate (§3.1 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a new point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Squared Euclidean distance to `other`.
    ///
    /// Cheaper than [`Point::distance`]; prefer it for comparisons.
    #[inline]
    pub fn distance_sq(&self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Euclidean distance to `other`.
    #[inline]
    pub fn distance(&self, other: Point) -> f64 {
        self.distance_sq(other).sqrt()
    }

    /// Component-wise minimum of two points.
    #[inline]
    pub fn min(self, other: Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[inline]
    pub fn max(self, other: Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` when both coordinates are finite numbers.
    #[inline]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }

    /// Linear interpolation between `self` (t = 0) and `other` (t = 1).
    #[inline]
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point::new(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

impl From<(f64, f64)> for Point {
    fn from(value: (f64, f64)) -> Self {
        Point::new(value.0, value.1)
    }
}

impl From<Point> for (f64, f64) {
    fn from(value: Point) -> Self {
        (value.x, value.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_matches_pythagoras() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.distance_sq(b), 25.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-1.5, 2.0);
        let b = Point::new(4.0, -3.25);
        assert_eq!(a.distance(b), b.distance(a));
    }

    #[test]
    fn distance_to_self_is_zero() {
        let p = Point::new(7.0, -2.0);
        assert_eq!(p.distance(p), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 5.0);
        let b = Point::new(3.0, 2.0);
        assert_eq!(a.min(b), Point::new(1.0, 2.0));
        assert_eq!(a.max(b), Point::new(3.0, 5.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(2.0, 4.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Point::new(1.0, 2.0));
    }

    #[test]
    fn conversion_round_trip() {
        let p: Point = (1.0, 2.0).into();
        let t: (f64, f64) = p.into();
        assert_eq!(t, (1.0, 2.0));
    }

    #[test]
    fn finite_detection() {
        assert!(Point::new(1.0, 2.0).is_finite());
        assert!(!Point::new(f64::NAN, 2.0).is_finite());
        assert!(!Point::new(1.0, f64::INFINITY).is_finite());
    }
}
