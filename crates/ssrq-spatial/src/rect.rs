use crate::Point;
use std::fmt;

/// An axis-aligned rectangle, used as the spatial extent of grid cells and
/// index nodes.
///
/// The branch-and-bound searches of SPA/TSA/AIS rely on
/// [`Rect::min_distance`], the minimum Euclidean distance between a query
/// point and any point inside the rectangle (the `ď(u_q, C)` bound of §5.1).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    /// Lower-left corner.
    pub min: Point,
    /// Upper-right corner.
    pub max: Point,
}

impl Rect {
    /// Creates a rectangle from two corner points; the corners are
    /// normalized so `min` is component-wise ≤ `max`.
    pub fn new(a: Point, b: Point) -> Self {
        Rect {
            min: a.min(b),
            max: a.max(b),
        }
    }

    /// Creates the unit square `[0, 1] × [0, 1]`, the normalized spatial
    /// domain used throughout the SSRQ experiments.
    pub fn unit() -> Self {
        Rect::new(Point::new(0.0, 0.0), Point::new(1.0, 1.0))
    }

    /// Smallest rectangle enclosing all `points`; `None` for an empty input.
    pub fn bounding(points: impl IntoIterator<Item = Point>) -> Option<Self> {
        let mut iter = points.into_iter();
        let first = iter.next()?;
        let mut min = first;
        let mut max = first;
        for p in iter {
            min = min.min(p);
            max = max.max(p);
        }
        Some(Rect { min, max })
    }

    /// Width of the rectangle.
    #[inline]
    pub fn width(&self) -> f64 {
        self.max.x - self.min.x
    }

    /// Height of the rectangle.
    #[inline]
    pub fn height(&self) -> f64 {
        self.max.y - self.min.y
    }

    /// Area of the rectangle.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Center point of the rectangle.
    #[inline]
    pub fn center(&self) -> Point {
        Point::new(
            (self.min.x + self.max.x) / 2.0,
            (self.min.y + self.max.y) / 2.0,
        )
    }

    /// Returns `true` when `p` lies inside the rectangle (boundary
    /// inclusive).
    #[inline]
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min.x && p.x <= self.max.x && p.y >= self.min.y && p.y <= self.max.y
    }

    /// Returns `true` when the two rectangles overlap (boundary inclusive).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.min.x <= other.max.x
            && self.max.x >= other.min.x
            && self.min.y <= other.max.y
            && self.max.y >= other.min.y
    }

    /// Minimum Euclidean distance from `p` to any point of the rectangle.
    ///
    /// Zero when `p` lies inside; otherwise the distance to the closest
    /// point on the boundary (corner or edge projection), exactly as the
    /// `ď(u_q, C)` lower bound of the paper.
    #[inline]
    pub fn min_distance(&self, p: Point) -> f64 {
        self.min_distance_sq(p).sqrt()
    }

    /// Squared version of [`Rect::min_distance`].
    #[inline]
    pub fn min_distance_sq(&self, p: Point) -> f64 {
        let dx = if p.x < self.min.x {
            self.min.x - p.x
        } else if p.x > self.max.x {
            p.x - self.max.x
        } else {
            0.0
        };
        let dy = if p.y < self.min.y {
            self.min.y - p.y
        } else if p.y > self.max.y {
            p.y - self.max.y
        } else {
            0.0
        };
        dx * dx + dy * dy
    }

    /// Maximum Euclidean distance from `p` to any point of the rectangle
    /// (attained at one of the four corners).
    pub fn max_distance(&self, p: Point) -> f64 {
        let corners = [
            self.min,
            self.max,
            Point::new(self.min.x, self.max.y),
            Point::new(self.max.x, self.min.y),
        ];
        corners
            .iter()
            .map(|c| c.distance(p))
            .fold(0.0_f64, f64::max)
    }

    /// Smallest rectangle enclosing both `self` and `other`.
    #[inline]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            min: self.min.min(other.min),
            max: self.max.max(other.max),
        }
    }

    /// Smallest rectangle enclosing `self` and the point `p`.
    ///
    /// Used to maintain the conservative bounding rectangle of a shard's
    /// resident locations: inclusions only ever grow the rectangle, so it
    /// stays a valid *lower-bound region* (every resident lies inside it)
    /// even when removals would allow it to shrink.
    #[inline]
    pub fn including(&self, p: Point) -> Rect {
        Rect {
            min: self.min.min(p),
            max: self.max.max(p),
        }
    }

    /// Expands the rectangle by `margin` on every side.
    pub fn expanded(&self, margin: f64) -> Rect {
        Rect {
            min: Point::new(self.min.x - margin, self.min.y - margin),
            max: Point::new(self.max.x + margin, self.max.y + margin),
        }
    }

    /// Length of the diagonal — the maximum pairwise distance inside the
    /// rectangle, used to normalize spatial distances.
    pub fn diagonal(&self) -> f64 {
        self.min.distance(self.max)
    }
}

impl fmt::Display for Rect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} – {}]", self.min, self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(Point::new(x0, y0), Point::new(x1, y1))
    }

    #[test]
    fn corners_are_normalized() {
        let r = Rect::new(Point::new(5.0, 1.0), Point::new(2.0, 4.0));
        assert_eq!(r.min, Point::new(2.0, 1.0));
        assert_eq!(r.max, Point::new(5.0, 4.0));
    }

    #[test]
    fn bounding_box_of_points() {
        let pts = vec![
            Point::new(1.0, 2.0),
            Point::new(-3.0, 5.0),
            Point::new(0.0, -1.0),
        ];
        let r = Rect::bounding(pts).unwrap();
        assert_eq!(r.min, Point::new(-3.0, -1.0));
        assert_eq!(r.max, Point::new(1.0, 5.0));
        assert!(Rect::bounding(Vec::new()).is_none());
    }

    #[test]
    fn contains_boundary_and_interior() {
        let r = rect(0.0, 0.0, 2.0, 2.0);
        assert!(r.contains(Point::new(1.0, 1.0)));
        assert!(r.contains(Point::new(0.0, 2.0)));
        assert!(!r.contains(Point::new(2.1, 1.0)));
    }

    #[test]
    fn min_distance_inside_is_zero() {
        let r = rect(0.0, 0.0, 2.0, 2.0);
        assert_eq!(r.min_distance(Point::new(1.0, 1.5)), 0.0);
    }

    #[test]
    fn min_distance_edge_projection() {
        // Point directly left of the rectangle: distance is the horizontal
        // projection, as in Figure 4(a) of the paper.
        let r = rect(2.0, 0.0, 4.0, 2.0);
        assert_eq!(r.min_distance(Point::new(0.0, 1.0)), 2.0);
    }

    #[test]
    fn min_distance_corner() {
        let r = rect(3.0, 4.0, 5.0, 6.0);
        // Closest point is the corner (3, 4); origin distance is 5.
        assert_eq!(r.min_distance(Point::ORIGIN), 5.0);
    }

    #[test]
    fn max_distance_is_farthest_corner() {
        let r = rect(0.0, 0.0, 3.0, 4.0);
        assert_eq!(r.max_distance(Point::ORIGIN), 5.0);
        assert_eq!(r.max_distance(Point::new(3.0, 4.0)), 5.0);
    }

    #[test]
    fn min_distance_never_exceeds_point_distances() {
        let r = rect(1.0, 1.0, 2.0, 3.0);
        let q = Point::new(-1.0, 0.0);
        // distance to every corner must be >= min_distance
        for c in [r.min, r.max, Point::new(1.0, 3.0), Point::new(2.0, 1.0)] {
            assert!(r.min_distance(q) <= q.distance(c) + 1e-12);
        }
    }

    #[test]
    fn intersects_cases() {
        let a = rect(0.0, 0.0, 2.0, 2.0);
        let b = rect(1.0, 1.0, 3.0, 3.0);
        let c = rect(2.5, 2.5, 4.0, 4.0);
        assert!(a.intersects(&b));
        assert!(b.intersects(&c));
        assert!(!a.intersects(&c));
    }

    #[test]
    fn geometry_accessors() {
        let r = rect(0.0, 0.0, 2.0, 4.0);
        assert_eq!(r.width(), 2.0);
        assert_eq!(r.height(), 4.0);
        assert_eq!(r.area(), 8.0);
        assert_eq!(r.center(), Point::new(1.0, 2.0));
        assert!((r.diagonal() - 20.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn union_and_including_cover_both_inputs() {
        let a = rect(0.0, 0.0, 1.0, 1.0);
        let b = rect(2.0, -1.0, 3.0, 0.5);
        let u = a.union(&b);
        assert_eq!(u.min, Point::new(0.0, -1.0));
        assert_eq!(u.max, Point::new(3.0, 1.0));
        // Union with a contained rectangle is the identity.
        assert_eq!(u.union(&a), u);
        let grown = a.including(Point::new(-1.0, 2.0));
        assert!(grown.contains(Point::new(-1.0, 2.0)));
        assert!(grown.contains(Point::new(1.0, 1.0)));
        // Including an interior point changes nothing.
        assert_eq!(a.including(Point::new(0.5, 0.5)), a);
    }

    #[test]
    fn expanded_grows_every_side() {
        let r = rect(1.0, 1.0, 2.0, 2.0).expanded(0.5);
        assert_eq!(r.min, Point::new(0.5, 0.5));
        assert_eq!(r.max, Point::new(2.5, 2.5));
    }

    #[test]
    fn unit_rect() {
        let u = Rect::unit();
        assert_eq!(u.area(), 1.0);
        assert!(u.contains(Point::new(0.5, 0.5)));
    }
}
