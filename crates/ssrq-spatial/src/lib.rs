//! Spatial substrate for the SSRQ (Social and Spatial Ranking Query) system.
//!
//! The paper ("Joint Search by Social and Spatial Proximity", Mouratidis et
//! al.) keeps user locations in main memory and indexes them with a regular
//! grid (single-level for the SPA/TSA spatial search, multi-level for the
//! AIS aggregate index).  This crate provides those building blocks:
//!
//! * [`Point`] and [`Rect`] — plain 2-D Euclidean geometry.
//! * [`UniformGrid`] — a single-level regular grid over a bounding box with
//!   O(1) location updates, the index recommended for dynamic main-memory
//!   data in the paper (§4.1).
//! * [`IncrementalNn`] — best-first (branch-and-bound) incremental nearest
//!   neighbour search over a [`UniformGrid`]; yields items in strictly
//!   non-decreasing distance from the query point.
//! * [`MultiLevelGrid`] — the multi-level regular grid that underlies the
//!   AIS index (§5.1): every internal node is parent to `s × s` nodes of the
//!   immediately lower level and the lowest level holds the actual items.
//!
//! The crate is deliberately independent of the social-graph substrate; the
//! AIS index in `ssrq-core` composes a [`MultiLevelGrid`] with per-node
//! social summaries.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod grid;
mod multigrid;
mod nn;
mod point;
mod rect;

pub use error::SpatialError;

/// Rough per-entry overhead estimate for a `HashMap` (SwissTable control
/// byte plus padding/load-factor slack), shared by the capacity-based heap
/// estimates of the sparse grid structures.
pub(crate) fn hash_map_heap_bytes<K, V>(map: &std::collections::HashMap<K, V>) -> usize {
    map.capacity() * (std::mem::size_of::<(K, V)>() + 1)
}

pub use grid::{CellCoord, UniformGrid};
pub use multigrid::{MultiLevelGrid, NodeId, NodeKind};
pub use nn::{IncrementalNn, Neighbor};
pub use point::Point;
pub use rect::Rect;

/// Identifier of an item (user) stored in a spatial index.
///
/// The SSRQ system uses dense `u32` identifiers for users; the spatial
/// indexes adopt the same convention so that ids can be used to address
/// parallel per-user arrays without hashing.
pub type ItemId = u32;
