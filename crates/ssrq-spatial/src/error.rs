use std::fmt;

/// Errors raised by the spatial substrate.
#[derive(Debug, Clone, PartialEq)]
pub enum SpatialError {
    /// The requested grid configuration is invalid (zero cells, empty or
    /// degenerate bounding rectangle, too many cells, ...).
    InvalidConfiguration(String),
    /// An item id was used that is not present in the index.
    UnknownItem(u32),
    /// A point lies outside the bounding rectangle of the index.
    OutOfBounds {
        /// The offending x coordinate.
        x: f64,
        /// The offending y coordinate.
        y: f64,
    },
}

impl fmt::Display for SpatialError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpatialError::InvalidConfiguration(msg) => {
                write!(f, "invalid spatial index configuration: {msg}")
            }
            SpatialError::UnknownItem(id) => write!(f, "unknown item id {id}"),
            SpatialError::OutOfBounds { x, y } => {
                write!(f, "point ({x}, {y}) lies outside the index bounds")
            }
        }
    }
}

impl std::error::Error for SpatialError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpatialError::InvalidConfiguration("side must be > 0".into());
        assert!(e.to_string().contains("side must be > 0"));
        let e = SpatialError::UnknownItem(42);
        assert!(e.to_string().contains("42"));
        let e = SpatialError::OutOfBounds { x: 1.0, y: 2.0 };
        assert!(e.to_string().contains("(1, 2)"));
    }
}
