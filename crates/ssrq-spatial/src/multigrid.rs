use crate::{hash_map_heap_bytes, ItemId, Point, Rect, SpatialError};
use std::collections::HashMap;

/// Identifier of a node (internal node or leaf cell) of a
/// [`MultiLevelGrid`].  Node ids are dense and can be used to index parallel
/// per-node arrays (the AIS index keeps its social summaries this way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// The kind of a multi-level grid node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// An internal node: parent to `s × s` nodes of the next lower level.
    Internal,
    /// A leaf cell: holds the actual items.
    Leaf,
}

/// A multi-level regular grid, the spatial skeleton of the AIS index
/// (§5.1 of the paper).
///
/// Every node of level `l` is parent to `s × s` nodes of level `l + 1`
/// (`s` is the *partitioning granularity*).  The top level has `s × s`
/// nodes, so level `l` has `s^(l+1)` cells per axis.  Only the lowest level
/// stores items; the structure "does not necessarily have a root" — the
/// search starts from all top-level nodes (the paper keeps the lowest two
/// levels of a three-level hierarchy, which is the default here:
/// `levels = 2`).
#[derive(Debug, Clone)]
pub struct MultiLevelGrid {
    bounds: Rect,
    branch: u32,
    levels: u32,
    /// Cells per axis for each level (index 0 = top level).
    level_sides: Vec<u32>,
    /// First flat node id of each level.
    level_offsets: Vec<u32>,
    total_nodes: u32,
    /// Items of each **occupied** leaf cell, keyed by leaf-local index.
    /// Empty cells have no entry at all, so the grid's footprint scales with
    /// occupancy instead of geometry (a leaf level of `s^levels × s^levels`
    /// cells would otherwise cost a `Vec` header per cell regardless of how
    /// few residents a shard holds).  Buckets are removed as they empty.
    leaf_items: HashMap<u32, Vec<ItemId>>,
    /// Position of each stored item.  Sparse for the same reason: a shard
    /// holding few residents with large ids must not pay for a dense table
    /// up to the maximum item id.
    positions: HashMap<ItemId, Point>,
    len: usize,
}

/// Hard cap on the total number of nodes, to protect against accidental
/// `branch`/`levels` combinations that would exhaust memory.
const MAX_NODES: u64 = 8_000_000;

impl MultiLevelGrid {
    /// Creates an empty multi-level grid.
    ///
    /// * `branch` — the partitioning granularity `s` (children per axis).
    /// * `levels` — number of retained levels (≥ 1); the paper's default
    ///   configuration corresponds to `levels = 2`.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::InvalidConfiguration`] for zero `branch` or
    /// `levels`, degenerate bounds, or a configuration that would exceed the
    /// internal node cap.
    pub fn new(bounds: Rect, branch: u32, levels: u32) -> Result<Self, SpatialError> {
        if branch == 0 {
            return Err(SpatialError::InvalidConfiguration(
                "branch factor s must be at least 1".into(),
            ));
        }
        if levels == 0 {
            return Err(SpatialError::InvalidConfiguration(
                "a multi-level grid needs at least one level".into(),
            ));
        }
        if !(bounds.min.is_finite() && bounds.max.is_finite())
            || bounds.width() <= 0.0
            || bounds.height() <= 0.0
        {
            return Err(SpatialError::InvalidConfiguration(
                "grid bounds must be finite with positive extent".into(),
            ));
        }
        let mut level_sides = Vec::with_capacity(levels as usize);
        let mut level_offsets = Vec::with_capacity(levels as usize);
        let mut total: u64 = 0;
        let mut side: u64 = 1;
        for _ in 0..levels {
            side = side.saturating_mul(branch as u64);
            level_offsets.push(total as u32);
            level_sides.push(side as u32);
            total += side * side;
            if total > MAX_NODES || side > u32::MAX as u64 {
                return Err(SpatialError::InvalidConfiguration(format!(
                    "branch={branch}, levels={levels} would create more than {MAX_NODES} nodes"
                )));
            }
        }
        Ok(MultiLevelGrid {
            bounds,
            branch,
            levels,
            level_sides,
            level_offsets,
            total_nodes: total as u32,
            leaf_items: HashMap::new(),
            positions: HashMap::new(),
            len: 0,
        })
    }

    /// Builds a multi-level grid from `(id, point)` pairs.
    pub fn bulk_load(
        bounds: Rect,
        branch: u32,
        levels: u32,
        items: impl IntoIterator<Item = (ItemId, Point)>,
    ) -> Result<Self, SpatialError> {
        let mut grid = MultiLevelGrid::new(bounds, branch, levels)?;
        for (id, p) in items {
            grid.insert(id, p);
        }
        Ok(grid)
    }

    /// Bounding rectangle covered by the grid.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Partitioning granularity `s`.
    pub fn branch(&self) -> u32 {
        self.branch
    }

    /// Number of levels.
    pub fn levels(&self) -> u32 {
        self.levels
    }

    /// Total number of nodes across all levels.
    pub fn node_count(&self) -> u32 {
        self.total_nodes
    }

    /// Number of stored items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` when no item is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of leaf cells that currently hold at least one item.  Together
    /// with [`MultiLevelGrid::leaf_cell_count`] this is the occupancy the
    /// memory accounting reports: empty cells cost nothing.
    pub fn occupied_leaf_count(&self) -> usize {
        self.leaf_items.len()
    }

    /// Total number of leaf cells of the geometry (occupied or not).
    pub fn leaf_cell_count(&self) -> usize {
        let side = *self.level_sides.last().expect("levels >= 1") as usize;
        side * side
    }

    /// Approximate heap footprint of the grid structure in bytes (per-level
    /// tables, the occupied leaf buckets and the sparse position table).
    /// Scales with the number of stored items, not with the cell count.
    pub fn approx_heap_bytes(&self) -> usize {
        self.level_sides.capacity() * std::mem::size_of::<u32>()
            + self.level_offsets.capacity() * std::mem::size_of::<u32>()
            + hash_map_heap_bytes(&self.leaf_items)
            + self
                .leaf_items
                .values()
                .map(|c| c.capacity() * std::mem::size_of::<ItemId>())
                .sum::<usize>()
            + hash_map_heap_bytes(&self.positions)
    }

    /// Current position of an item.
    pub fn position(&self, id: ItemId) -> Option<Point> {
        self.positions.get(&id).copied()
    }

    /// The level (0 = top) a node belongs to.
    pub fn node_level(&self, node: NodeId) -> u32 {
        debug_assert!(node.0 < self.total_nodes);
        let mut level = self.levels - 1;
        for (l, &off) in self.level_offsets.iter().enumerate().skip(1) {
            if node.0 < off {
                level = l as u32 - 1;
                break;
            }
        }
        level
    }

    /// Whether a node is internal or a leaf cell.
    pub fn node_kind(&self, node: NodeId) -> NodeKind {
        if self.node_level(node) == self.levels - 1 {
            NodeKind::Leaf
        } else {
            NodeKind::Internal
        }
    }

    /// Spatial extent of a node.
    pub fn node_rect(&self, node: NodeId) -> Rect {
        let level = self.node_level(node);
        let side = self.level_sides[level as usize];
        let local = node.0 - self.level_offsets[level as usize];
        let cx = local % side;
        let cy = local / side;
        let w = self.bounds.width() / side as f64;
        let h = self.bounds.height() / side as f64;
        let x0 = self.bounds.min.x + cx as f64 * w;
        let y0 = self.bounds.min.y + cy as f64 * h;
        Rect::new(Point::new(x0, y0), Point::new(x0 + w, y0 + h))
    }

    /// Iterates over the nodes of the top (coarsest) level — the entry point
    /// of the AIS branch-and-bound search.
    pub fn top_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        let side = self.level_sides[0] as u64;
        (0..side * side).map(|i| NodeId(i as u32))
    }

    /// Iterates over the children of an internal node (its `s × s` cells of
    /// the next lower level).
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `node` is a leaf.
    pub fn children(&self, node: NodeId) -> Vec<NodeId> {
        let level = self.node_level(node);
        debug_assert!(
            level + 1 < self.levels,
            "leaf nodes have no children (node {node:?})"
        );
        let side = self.level_sides[level as usize];
        let child_level = level + 1;
        let child_side = self.level_sides[child_level as usize];
        let child_offset = self.level_offsets[child_level as usize];
        let local = node.0 - self.level_offsets[level as usize];
        let cx = local % side;
        let cy = local / side;
        let mut out = Vec::with_capacity((self.branch * self.branch) as usize);
        for dy in 0..self.branch {
            for dx in 0..self.branch {
                let ccx = cx * self.branch + dx;
                let ccy = cy * self.branch + dy;
                out.push(NodeId(child_offset + ccy * child_side + ccx));
            }
        }
        out
    }

    /// Parent node of `node`; `None` for top-level nodes.
    pub fn parent(&self, node: NodeId) -> Option<NodeId> {
        let level = self.node_level(node);
        if level == 0 {
            return None;
        }
        let side = self.level_sides[level as usize];
        let local = node.0 - self.level_offsets[level as usize];
        let cx = (local % side) / self.branch;
        let cy = (local / side) / self.branch;
        let parent_side = self.level_sides[(level - 1) as usize];
        Some(NodeId(
            self.level_offsets[(level - 1) as usize] + cy * parent_side + cx,
        ))
    }

    /// Items stored in a leaf cell.
    ///
    /// Returns an empty slice for internal nodes.
    pub fn leaf_items(&self, node: NodeId) -> &[ItemId] {
        match self.node_kind(node) {
            NodeKind::Leaf => {
                let leaf_offset = *self.level_offsets.last().expect("levels >= 1");
                self.leaf_items
                    .get(&(node.0 - leaf_offset))
                    .map_or(&[], Vec::as_slice)
            }
            NodeKind::Internal => &[],
        }
    }

    /// The leaf cell containing `point` (clamped into bounds).
    pub fn leaf_of(&self, point: Point) -> NodeId {
        let p = self.clamp(point);
        let side = *self.level_sides.last().expect("levels >= 1");
        let w = self.bounds.width() / side as f64;
        let h = self.bounds.height() / side as f64;
        let cx = (((p.x - self.bounds.min.x) / w) as u32).min(side - 1);
        let cy = (((p.y - self.bounds.min.y) / h) as u32).min(side - 1);
        NodeId(*self.level_offsets.last().expect("levels >= 1") + cy * side + cx)
    }

    /// Inserts `id` at `point` (or moves it there if already present).
    /// Returns the leaf cell the item now belongs to.
    pub fn insert(&mut self, id: ItemId, point: Point) -> NodeId {
        let point = self.clamp(point);
        if self.position(id).is_some() {
            let (_, new) = self.update(id, point).expect("item verified present");
            return new;
        }
        let leaf = self.leaf_of(point);
        let leaf_offset = *self.level_offsets.last().expect("levels >= 1");
        self.leaf_items
            .entry(leaf.0 - leaf_offset)
            .or_default()
            .push(id);
        self.positions.insert(id, point);
        self.len += 1;
        leaf
    }

    /// Removes `id`, returning the leaf cell it was stored in.
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::UnknownItem`] if the item is not stored.
    pub fn remove(&mut self, id: ItemId) -> Result<NodeId, SpatialError> {
        let point = self.position(id).ok_or(SpatialError::UnknownItem(id))?;
        let leaf = self.leaf_of(point);
        let leaf_offset = *self.level_offsets.last().expect("levels >= 1");
        self.remove_from_bucket(leaf.0 - leaf_offset, id);
        self.positions.remove(&id);
        self.len -= 1;
        if self.len == 0 {
            // A fully drained grid must genuinely return to its empty
            // footprint rather than keep the old map capacity around.
            self.leaf_items = HashMap::new();
            self.positions = HashMap::new();
        }
        Ok(leaf)
    }

    /// Removes `id` from an occupied leaf bucket, dropping the bucket
    /// entirely when it empties (vacated cells must go back to costing
    /// nothing).
    fn remove_from_bucket(&mut self, local: u32, id: ItemId) {
        if let Some(cell) = self.leaf_items.get_mut(&local) {
            if let Some(pos) = cell.iter().position(|&x| x == id) {
                cell.swap_remove(pos);
            }
            if cell.is_empty() {
                self.leaf_items.remove(&local);
            }
        }
    }

    /// Moves `id` to `point`; returns `(old_leaf, new_leaf)` so callers can
    /// maintain per-node aggregates (the AIS index recomputes social
    /// summaries only when these differ).
    ///
    /// # Errors
    ///
    /// Returns [`SpatialError::UnknownItem`] if the item is not stored.
    pub fn update(&mut self, id: ItemId, point: Point) -> Result<(NodeId, NodeId), SpatialError> {
        let point = self.clamp(point);
        let old = self.position(id).ok_or(SpatialError::UnknownItem(id))?;
        let old_leaf = self.leaf_of(old);
        let new_leaf = self.leaf_of(point);
        if old_leaf != new_leaf {
            let leaf_offset = *self.level_offsets.last().expect("levels >= 1");
            self.remove_from_bucket(old_leaf.0 - leaf_offset, id);
            self.leaf_items
                .entry(new_leaf.0 - leaf_offset)
                .or_default()
                .push(id);
        }
        self.positions.insert(id, point);
        Ok((old_leaf, new_leaf))
    }

    /// Iterates over all stored `(id, point)` pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (ItemId, Point)> + '_ {
        self.positions.iter().map(|(&id, &p)| (id, p))
    }

    /// Walks from a leaf cell up to its top-level ancestor, yielding every
    /// node on the way (leaf first).  Used for upward propagation of
    /// aggregate updates.
    pub fn ancestors(&self, node: NodeId) -> Vec<NodeId> {
        let mut out = vec![node];
        let mut cur = node;
        while let Some(p) = self.parent(cur) {
            out.push(p);
            cur = p;
        }
        out
    }

    fn clamp(&self, p: Point) -> Point {
        Point::new(
            p.x.clamp(self.bounds.min.x, self.bounds.max.x),
            p.y.clamp(self.bounds.min.y, self.bounds.max.y),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(branch: u32, levels: u32) -> MultiLevelGrid {
        MultiLevelGrid::new(Rect::unit(), branch, levels).unwrap()
    }

    #[test]
    fn rejects_invalid_configurations() {
        assert!(MultiLevelGrid::new(Rect::unit(), 0, 2).is_err());
        assert!(MultiLevelGrid::new(Rect::unit(), 4, 0).is_err());
        assert!(MultiLevelGrid::new(Rect::unit(), 100, 4).is_err());
        let degenerate = Rect::new(Point::new(0.0, 0.0), Point::new(0.0, 1.0));
        assert!(MultiLevelGrid::new(degenerate, 4, 2).is_err());
    }

    #[test]
    fn node_counts_follow_geometry() {
        let g = grid(3, 2);
        // level 0: 3x3 = 9, level 1: 9x9 = 81.
        assert_eq!(g.node_count(), 90);
        assert_eq!(g.top_nodes().count(), 9);
    }

    #[test]
    fn levels_and_kinds() {
        let g = grid(2, 3);
        // sides: 2, 4, 8 -> offsets 0, 4, 20 -> total 84
        assert_eq!(g.node_count(), 4 + 16 + 64);
        assert_eq!(g.node_level(NodeId(0)), 0);
        assert_eq!(g.node_level(NodeId(3)), 0);
        assert_eq!(g.node_level(NodeId(4)), 1);
        assert_eq!(g.node_level(NodeId(19)), 1);
        assert_eq!(g.node_level(NodeId(20)), 2);
        assert_eq!(g.node_kind(NodeId(0)), NodeKind::Internal);
        assert_eq!(g.node_kind(NodeId(25)), NodeKind::Leaf);
    }

    #[test]
    fn children_tile_the_parent() {
        let g = grid(3, 2);
        for top in g.top_nodes() {
            let parent_rect = g.node_rect(top);
            let children = g.children(top);
            assert_eq!(children.len(), 9);
            let area: f64 = children.iter().map(|&c| g.node_rect(c).area()).sum();
            assert!((area - parent_rect.area()).abs() < 1e-9);
            for c in children {
                let r = g.node_rect(c);
                assert!(parent_rect.contains(r.center()));
                assert_eq!(g.parent(c), Some(top));
            }
        }
    }

    #[test]
    fn parent_of_top_is_none() {
        let g = grid(4, 2);
        assert_eq!(g.parent(NodeId(0)), None);
    }

    #[test]
    fn leaf_of_agrees_with_rect_containment() {
        let g = grid(5, 2);
        for &p in &[
            Point::new(0.01, 0.01),
            Point::new(0.99, 0.99),
            Point::new(0.5, 0.25),
            Point::new(1.0, 1.0),
        ] {
            let leaf = g.leaf_of(p);
            assert_eq!(g.node_kind(leaf), NodeKind::Leaf);
            assert!(g.node_rect(leaf).contains(p));
        }
    }

    #[test]
    fn insert_remove_update_cycle() {
        let mut g = grid(4, 2);
        let leaf_a = g.insert(7, Point::new(0.1, 0.1));
        assert_eq!(g.len(), 1);
        assert_eq!(g.leaf_items(leaf_a), &[7]);

        let (old, new) = g.update(7, Point::new(0.9, 0.9)).unwrap();
        assert_eq!(old, leaf_a);
        assert_ne!(old, new);
        assert!(g.leaf_items(old).is_empty());
        assert_eq!(g.leaf_items(new), &[7]);

        let removed_from = g.remove(7).unwrap();
        assert_eq!(removed_from, new);
        assert!(g.is_empty());
        assert!(matches!(g.remove(7), Err(SpatialError::UnknownItem(7))));
    }

    #[test]
    fn reinsert_acts_as_update() {
        let mut g = grid(4, 2);
        g.insert(1, Point::new(0.1, 0.1));
        let leaf = g.insert(1, Point::new(0.8, 0.8));
        assert_eq!(g.len(), 1);
        assert_eq!(g.leaf_items(leaf), &[1]);
    }

    #[test]
    fn ancestors_chain_reaches_top() {
        let g = grid(3, 3);
        let leaf = g.leaf_of(Point::new(0.4, 0.6));
        let chain = g.ancestors(leaf);
        assert_eq!(chain.len(), 3);
        assert_eq!(g.node_level(chain[0]), 2);
        assert_eq!(g.node_level(chain[1]), 1);
        assert_eq!(g.node_level(chain[2]), 0);
        // Every ancestor's rect contains the leaf's centre.
        let c = g.node_rect(leaf).center();
        for n in chain {
            assert!(g.node_rect(n).contains(c));
        }
    }

    #[test]
    fn bulk_load_distributes_items() {
        let pts: Vec<(ItemId, Point)> = (0..100)
            .map(|i| {
                (
                    i,
                    Point::new((i % 10) as f64 / 10.0 + 0.05, (i / 10) as f64 / 10.0 + 0.05),
                )
            })
            .collect();
        let g = MultiLevelGrid::bulk_load(Rect::unit(), 5, 2, pts).unwrap();
        assert_eq!(g.len(), 100);
        let total: usize = g
            .top_nodes()
            .flat_map(|n| g.children(n))
            .map(|c| g.leaf_items(c).len())
            .sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn empty_cells_cost_nothing() {
        let mut g = grid(10, 2);
        assert_eq!(g.leaf_cell_count(), 10_000);
        assert_eq!(g.occupied_leaf_count(), 0);
        // An empty grid's footprint is bounded by its per-level tables, not
        // by its 10k leaf cells.
        assert!(g.approx_heap_bytes() < 1024);
        g.insert(5, Point::new(0.55, 0.55));
        assert_eq!(g.occupied_leaf_count(), 1);
        // Vacating the only occupied cell drops its bucket again.
        g.remove(5).unwrap();
        assert_eq!(g.occupied_leaf_count(), 0);
        assert!(g.iter().next().is_none());
    }

    #[test]
    fn moving_the_last_item_vacates_the_old_cell() {
        let mut g = grid(4, 2);
        g.insert(1, Point::new(0.1, 0.1));
        g.insert(2, Point::new(0.1, 0.12));
        assert_eq!(g.occupied_leaf_count(), 1);
        g.update(1, Point::new(0.9, 0.9)).unwrap();
        assert_eq!(g.occupied_leaf_count(), 2);
        g.update(2, Point::new(0.9, 0.92)).unwrap();
        assert_eq!(g.occupied_leaf_count(), 1);
        assert_eq!(g.len(), 2);
    }

    #[test]
    fn single_level_grid_is_all_leaves() {
        let g = grid(4, 1);
        assert_eq!(g.node_count(), 16);
        for n in g.top_nodes() {
            assert_eq!(g.node_kind(n), NodeKind::Leaf);
        }
    }
}
