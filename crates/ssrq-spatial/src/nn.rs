use crate::{grid::CellCoord, ItemId, Point, UniformGrid};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A neighbour produced by [`IncrementalNn`]: an item id together with its
/// Euclidean distance from the query point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Neighbor {
    /// The item (user) id.
    pub id: ItemId,
    /// Euclidean distance from the query point.
    pub distance: f64,
}

#[derive(Debug, Clone, Copy)]
enum Entry {
    Cell(CellCoord),
    Item(ItemId),
}

#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    key: f64,
    entry: Entry,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl Eq for HeapEntry {}
impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering: BinaryHeap is a max-heap, we need a min-heap on
        // the distance key.  Keys are finite by construction.
        other.key.partial_cmp(&self.key).unwrap_or(Ordering::Equal)
    }
}

/// Incremental (best-first / branch-and-bound) nearest-neighbour search over
/// a [`UniformGrid`].
///
/// The iterator yields items in non-decreasing Euclidean distance from the
/// query point, fetching one neighbour at a time — exactly the "incremental
/// nearest neighbor search" that SPA and the spatial repository of TSA rely
/// on (§4.1 of the paper).  Grid cells enter a min-heap keyed by the minimum
/// distance between the query point and the cell rectangle; items are pushed
/// with their exact distance when their cell is expanded.
///
/// The search takes an immutable snapshot of the grid via a shared borrow;
/// location updates must not happen while an incremental search is alive
/// (enforced by the borrow checker).
#[derive(Debug)]
pub struct IncrementalNn<'a> {
    grid: &'a UniformGrid,
    query: Point,
    heap: BinaryHeap<HeapEntry>,
    /// Statistics: how many heap entries (cells + items) were popped.
    pops: usize,
}

impl<'a> IncrementalNn<'a> {
    /// Starts an incremental NN search around `query`.
    ///
    /// Only the **occupied** cells seed the heap, so search start-up is
    /// proportional to occupancy rather than to the `side × side` geometry.
    /// The seed is sorted row-major first: the occupied-cell set hashes in
    /// unspecified order, and equal-distance ties must expand in the same
    /// order on every run.
    pub fn new(grid: &'a UniformGrid, query: Point) -> Self {
        let mut occupied: Vec<CellCoord> = grid.occupied_cell_coords().collect();
        occupied.sort_unstable_by_key(|c| (c.cy, c.cx));
        let mut heap = BinaryHeap::with_capacity(occupied.len() * 2);
        for cell in occupied {
            heap.push(HeapEntry {
                key: grid.cell_rect(cell).min_distance(query),
                entry: Entry::Cell(cell),
            });
        }
        IncrementalNn {
            grid,
            query,
            heap,
            pops: 0,
        }
    }

    /// Number of heap pops performed so far (cells and items).  Used by the
    /// experiment harness to report search effort.
    pub fn pops(&self) -> usize {
        self.pops
    }

    /// Distance key at the head of the heap: a lower bound on the distance
    /// of every not-yet-reported item.  `None` when the search is exhausted.
    pub fn peek_lower_bound(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.key)
    }
}

impl Iterator for IncrementalNn<'_> {
    type Item = Neighbor;

    fn next(&mut self) -> Option<Self::Item> {
        while let Some(HeapEntry { key, entry }) = self.heap.pop() {
            self.pops += 1;
            match entry {
                Entry::Cell(cell) => {
                    for &id in self.grid.cell_items(cell) {
                        let p = self
                            .grid
                            .position(id)
                            .expect("items listed in a cell have positions");
                        self.heap.push(HeapEntry {
                            key: p.distance(self.query),
                            entry: Entry::Item(id),
                        });
                    }
                }
                Entry::Item(id) => {
                    return Some(Neighbor { id, distance: key });
                }
            }
        }
        None
    }
}

impl UniformGrid {
    /// Convenience constructor for an incremental NN search (see
    /// [`IncrementalNn`]).
    pub fn nearest_neighbors(&self, query: Point) -> IncrementalNn<'_> {
        IncrementalNn::new(self, query)
    }

    /// The `k` nearest neighbours of `query` (ties broken arbitrarily).
    pub fn k_nearest(&self, query: Point, k: usize) -> Vec<Neighbor> {
        self.nearest_neighbors(query).take(k).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rect;

    fn grid_with(points: &[(ItemId, Point)], side: u32) -> UniformGrid {
        UniformGrid::bulk_load(Rect::unit(), side, points.iter().copied()).unwrap()
    }

    fn brute_force(points: &[(ItemId, Point)], q: Point) -> Vec<Neighbor> {
        let mut v: Vec<Neighbor> = points
            .iter()
            .map(|&(id, p)| Neighbor {
                id,
                distance: p.distance(q),
            })
            .collect();
        v.sort_by(|a, b| a.distance.partial_cmp(&b.distance).unwrap());
        v
    }

    #[test]
    fn empty_grid_yields_nothing() {
        let g = UniformGrid::new(Rect::unit(), 4).unwrap();
        assert_eq!(g.nearest_neighbors(Point::new(0.5, 0.5)).count(), 0);
    }

    #[test]
    fn yields_all_items_in_nondecreasing_distance() {
        let pts: Vec<(ItemId, Point)> = vec![
            (0, Point::new(0.1, 0.1)),
            (1, Point::new(0.2, 0.9)),
            (2, Point::new(0.8, 0.8)),
            (3, Point::new(0.55, 0.45)),
            (4, Point::new(0.99, 0.01)),
        ];
        let g = grid_with(&pts, 4);
        let q = Point::new(0.5, 0.5);
        let result: Vec<Neighbor> = g.nearest_neighbors(q).collect();
        assert_eq!(result.len(), pts.len());
        for w in result.windows(2) {
            assert!(w[0].distance <= w[1].distance + 1e-12);
        }
    }

    #[test]
    fn matches_brute_force_on_dense_grid() {
        // Deterministic pseudo-random points (no rand dependency needed).
        let mut state = 0x1234_5678_u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 11) as f64 / (1u64 << 53) as f64
        };
        let pts: Vec<(ItemId, Point)> = (0..500)
            .map(|i| (i as ItemId, Point::new(next(), next())))
            .collect();
        let g = grid_with(&pts, 10);
        for &q in &[
            Point::new(0.5, 0.5),
            Point::new(0.02, 0.97),
            Point::new(1.0, 0.0),
        ] {
            let expected = brute_force(&pts, q);
            let got: Vec<Neighbor> = g.nearest_neighbors(q).collect();
            assert_eq!(got.len(), expected.len());
            for (a, b) in got.iter().zip(expected.iter()) {
                assert!((a.distance - b.distance).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn k_nearest_truncates() {
        let pts: Vec<(ItemId, Point)> = (0..20)
            .map(|i| (i, Point::new(i as f64 / 20.0, 0.5)))
            .collect();
        let g = grid_with(&pts, 5);
        let q = Point::new(0.0, 0.5);
        let top3 = g.k_nearest(q, 3);
        assert_eq!(top3.len(), 3);
        assert_eq!(top3[0].id, 0);
        assert_eq!(top3[1].id, 1);
        assert_eq!(top3[2].id, 2);
    }

    #[test]
    fn lower_bound_never_exceeds_next_result() {
        let pts: Vec<(ItemId, Point)> = (0..50)
            .map(|i| {
                (
                    i,
                    Point::new((i as f64 * 0.37) % 1.0, (i as f64 * 0.61) % 1.0),
                )
            })
            .collect();
        let g = grid_with(&pts, 6);
        let q = Point::new(0.3, 0.7);
        let mut it = g.nearest_neighbors(q);
        loop {
            let bound = it.peek_lower_bound();
            match it.next() {
                Some(n) => {
                    assert!(bound.unwrap() <= n.distance + 1e-12);
                }
                None => break,
            }
        }
    }

    #[test]
    fn query_point_identical_to_item() {
        let pts = vec![(0, Point::new(0.25, 0.25)), (1, Point::new(0.75, 0.75))];
        let g = grid_with(&pts, 3);
        let first = g.nearest_neighbors(Point::new(0.25, 0.25)).next().unwrap();
        assert_eq!(first.id, 0);
        assert_eq!(first.distance, 0.0);
    }

    #[test]
    fn pops_counter_increases() {
        let pts: Vec<(ItemId, Point)> = (0..10)
            .map(|i| (i, Point::new(i as f64 / 10.0, i as f64 / 10.0)))
            .collect();
        let g = grid_with(&pts, 4);
        let mut it = g.nearest_neighbors(Point::new(0.0, 0.0));
        assert_eq!(it.pops(), 0);
        it.next();
        assert!(it.pops() > 0);
    }
}
