//! Dependency-free observability for the SSRQ serving stack.
//!
//! Every layer of the system — the single-process engine, the in-process
//! sharded scatter, the multi-process wire serving tier — records into the
//! same three primitives:
//!
//! * **Metrics** ([`Registry`]) — atomic [`Counter`]s, [`Gauge`]s and
//!   log-bucketed [`Histogram`]s with exact `u64` counts.  Handles are
//!   cheap `Arc` clones; recording is a handful of atomic operations with
//!   no lock on the hot path.  A registry renders itself as
//!   Prometheus-style text ([`render_prometheus`]) and snapshots into
//!   plain data ([`MetricSample`]) that crosses process boundaries (the
//!   wire protocol's `Metrics` message) without losing exactness.
//! * **Traces** ([`Trace`]) — span trees with monotonic timestamps,
//!   identified by a `u64` trace id ([`next_trace_id`]) that rides the
//!   wire on `Query` frames so one query's spans can be correlated across
//!   the coordinator and every shard server it touched.  Completed trees
//!   ([`QuerySpans`]) accumulate in bounded [`SpanLog`]s for remote
//!   introspection.
//! * **Logs** ([`Logger`]) — structured `key=value` lines on stderr,
//!   levelled and silent by default, plus a [`SlowQueryLog`] that retains
//!   the request shape and span tree of queries over a configurable
//!   threshold.
//!
//! The crate depends on nothing but `std`, uses no wall-clock arithmetic
//! for durations (spans are measured against [`std::time::Instant`]), and
//! is safe to call from any thread.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod expose;
mod log;
mod metrics;
mod slowlog;
mod trace;

pub use expose::{escape_label_value, render_prometheus};
pub use log::{Level, Logger};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricSample, MetricValue, Registry,
    HISTOGRAM_BUCKETS,
};
pub use slowlog::{SlowQuery, SlowQueryLog};
pub use trace::{next_trace_id, ObsReport, QuerySpans, SpanId, SpanLog, SpanRecord, Trace};
