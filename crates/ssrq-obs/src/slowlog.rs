//! Slow-query capture.
//!
//! A [`SlowQueryLog`] watches completed queries and retains, in a bounded
//! ring, the ones whose total duration crossed a configurable threshold —
//! together with their request shape (a caller-provided detail string) and
//! full span tree, so an offender can be dissected after the fact without
//! re-running it.

use crate::trace::QuerySpans;
use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Duration;

/// One retained offender: what ran, how long it took, and where the time
/// went.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// The query's trace id (0 = untraced/legacy).
    pub trace_id: u64,
    /// Request shape, e.g. `"algorithm=ca k=10 users=3"`.
    pub detail: String,
    /// End-to-end duration in nanoseconds.
    pub total_ns: u64,
    /// The query's span tree.
    pub spans: QuerySpans,
}

impl SlowQuery {
    /// Renders the offender as text: a summary line plus the indented span
    /// tree.
    pub fn render(&self) -> String {
        format!(
            "slow query trace={:#018x} total_us={} {}\n{}",
            self.trace_id,
            self.total_ns / 1_000,
            self.detail,
            self.spans.render(),
        )
    }
}

/// A bounded ring of queries slower than a threshold.  `offer` is cheap
/// for fast queries: one comparison, no lock.
#[derive(Debug)]
pub struct SlowQueryLog {
    threshold_ns: u64,
    capacity: usize,
    entries: Mutex<VecDeque<SlowQuery>>,
}

impl SlowQueryLog {
    /// A log capturing queries at or above `threshold`, retaining the most
    /// recent `capacity` offenders (at least 1).
    pub fn new(threshold: Duration, capacity: usize) -> SlowQueryLog {
        SlowQueryLog {
            threshold_ns: u64::try_from(threshold.as_nanos()).unwrap_or(u64::MAX),
            capacity: capacity.max(1),
            entries: Mutex::new(VecDeque::new()),
        }
    }

    /// The capture threshold in nanoseconds.
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns
    }

    /// Offers a completed query; it is retained only if `total_ns` reaches
    /// the threshold.  Returns whether it was captured.  `detail` is only
    /// invoked for offenders, so callers may format lazily.
    pub fn offer(
        &self,
        total_ns: u64,
        spans: &QuerySpans,
        detail: impl FnOnce() -> String,
    ) -> bool {
        if total_ns < self.threshold_ns {
            return false;
        }
        let entry = SlowQuery {
            trace_id: spans.trace_id,
            detail: detail(),
            total_ns,
            spans: spans.clone(),
        };
        let mut entries = self.entries.lock().expect("slow query log lock");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(entry);
        true
    }

    /// The retained offenders, oldest first.
    pub fn recent(&self) -> Vec<SlowQuery> {
        self.entries
            .lock()
            .expect("slow query log lock")
            .iter()
            .cloned()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spans(trace_id: u64) -> QuerySpans {
        QuerySpans {
            trace_id,
            spans: vec![],
        }
    }

    #[test]
    fn only_offenders_are_captured() {
        let log = SlowQueryLog::new(Duration::from_micros(10), 4);
        assert!(!log.offer(9_999, &spans(1), || unreachable!("fast query formatted")));
        assert!(log.offer(10_000, &spans(2), || "k=5".into()));
        let recent = log.recent();
        assert_eq!(recent.len(), 1);
        assert_eq!(recent[0].trace_id, 2);
        assert_eq!(recent[0].detail, "k=5");
        assert!(recent[0].render().contains("total_us=10"));
    }

    #[test]
    fn ring_is_bounded() {
        let log = SlowQueryLog::new(Duration::ZERO, 2);
        for id in 1..=3u64 {
            log.offer(1, &spans(id), String::new);
        }
        let ids: Vec<u64> = log.recent().iter().map(|q| q.trace_id).collect();
        assert_eq!(ids, vec![2, 3]);
    }
}
