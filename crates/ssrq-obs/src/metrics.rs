//! The metrics registry: atomic counters, gauges and log-bucketed
//! histograms with exact `u64` counts.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed and
//! cheap to clone; recording touches only atomics.  The registry itself is
//! a mutexed map consulted at **registration** time (get-or-register by
//! name + label set), never on the record path — callers that care about
//! the last nanosecond hold their handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Number of histogram buckets: one per possible bit length of a `u64`
/// observation (bucket 0 holds exact zeros, bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing event count.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A free-standing counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value-wins instantaneous measurement, stored as `f64` bits.
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Default for Gauge {
    fn default() -> Gauge {
        Gauge(Arc::new(AtomicU64::new(0f64.to_bits())))
    }
}

impl Gauge {
    /// A free-standing gauge starting at 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative) with a CAS loop — safe under
    /// concurrent adders, e.g. a queue-depth gauge ticked from many
    /// threads.
    pub fn add(&self, delta: f64) {
        let mut current = self.0.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self
                .0
                .compare_exchange_weak(current, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(actual) => current = actual,
            }
        }
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

#[derive(Debug)]
struct HistogramInner {
    buckets: Vec<AtomicU64>,
    sum: AtomicU64,
}

/// A log-bucketed distribution of `u64` observations (typically latency
/// nanoseconds) with **exact** per-bucket counts: bucket `i` counts the
/// observations whose bit length is `i`, so every bucket spans one power
/// of two and no observation is ever dropped or clamped.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram(Arc::new(HistogramInner {
            buckets: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
        }))
    }
}

/// Bucket index of one observation: its bit length (0 for 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `index` — the largest value it counts.
pub(crate) fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// A free-standing histogram (not registered anywhere).
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.0.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Records a duration as whole nanoseconds (saturating at `u64::MAX`,
    /// ~584 years).
    pub fn observe_duration(&self, duration: std::time::Duration) {
        self.observe(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Total observations so far (sum of the exact bucket counts).
    pub fn count(&self) -> u64 {
        self.0
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .sum()
    }

    /// Sum of all observed values (wrapping only past `u64::MAX` total).
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the distribution.  `count` is derived from
    /// the bucket counts at read time, so a snapshot is always internally
    /// consistent (`count == Σ buckets`); `sum` may trail by in-flight
    /// observations.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut count = 0u64;
        for (index, bucket) in self.0.buckets.iter().enumerate() {
            let n = bucket.load(Ordering::Relaxed);
            if n > 0 {
                buckets.push((index as u8, n));
                count += n;
            }
        }
        HistogramSnapshot {
            buckets,
            sum: self.sum(),
            count,
        }
    }
}

/// A point-in-time histogram copy: sparse `(bucket index, exact count)`
/// pairs in ascending index order, plus the sum and total count.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    /// Non-empty buckets as `(bit-length index, count)` pairs.
    pub buckets: Vec<(u8, u64)>,
    /// Sum of all observed values.
    pub sum: u64,
    /// Total observations (equals the sum of the bucket counts).
    pub count: u64,
}

impl HistogramSnapshot {
    /// Inclusive upper bound of bucket `index` — the largest `u64` it
    /// counts (`0` for bucket 0, `2^i − 1` for bucket `i`).
    pub fn upper_bound(index: u8) -> u64 {
        bucket_upper_bound(index as usize)
    }

    /// Whether the snapshot is internally consistent: the total count
    /// equals the sum of the per-bucket counts, and the value sum is
    /// plausible for the populated buckets (zero only when every
    /// observation was zero).
    pub fn is_consistent(&self) -> bool {
        let bucket_total: u64 = self.buckets.iter().map(|&(_, n)| n).sum();
        if bucket_total != self.count {
            return false;
        }
        let nonzero_observations: u64 = self
            .buckets
            .iter()
            .filter(|&&(index, _)| index > 0)
            .map(|&(_, n)| n)
            .sum();
        nonzero_observations == 0 || self.sum > 0
    }

    /// Mean observed value, or 0.0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

/// One metric's point-in-time value inside a [`MetricSample`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// A counter reading.
    Counter(u64),
    /// A gauge reading.
    Gauge(f64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The Prometheus type name of this value.
    pub fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }
}

/// One registered metric at one label set, snapshotted — the unit a
/// registry exports, renders and ships across the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Metric name (e.g. `ssrq_server_queries_total`).
    pub name: String,
    /// Label pairs in ascending key order.
    pub labels: Vec<(String, String)>,
    /// The value at snapshot time.
    pub value: MetricValue,
}

#[derive(Debug, Clone)]
enum Entry {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Entry {
    fn kind(&self) -> &'static str {
        match self {
            Entry::Counter(_) => "counter",
            Entry::Gauge(_) => "gauge",
            Entry::Histogram(_) => "histogram",
        }
    }
}

type MetricKey = (String, Vec<(String, String)>);

/// A named collection of metrics: get-or-register by `(name, labels)`,
/// snapshot everything at once.
///
/// Registration takes a mutex; the returned handles record lock-free.
/// Most of the system uses the process-wide [`Registry::global`] so that
/// one `Metrics` request (or [`render_prometheus`](crate::render_prometheus))
/// sees every layer at once, but registries are ordinary values and tests
/// may build private ones.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<BTreeMap<MetricKey, Entry>>,
}

fn normalize_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|&(k, v)| (k.to_owned(), v.to_owned()))
        .collect();
    out.sort();
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// The process-wide registry every layer records into by default.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    fn entry(&self, name: &str, labels: &[(&str, &str)], default: Entry) -> Entry {
        let key = (name.to_owned(), normalize_labels(labels));
        let mut entries = self.entries.lock().expect("metrics registry lock");
        let entry = entries.entry(key).or_insert(default.clone());
        assert_eq!(
            entry.kind(),
            default.kind(),
            "metric {name:?} is already registered as a {}",
            entry.kind()
        );
        entry.clone()
    }

    /// The counter registered under `(name, labels)`, created on first use.
    ///
    /// # Panics
    ///
    /// If the same name + label set is already registered as a different
    /// metric kind — a programming error, caught loudly.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.entry(name, labels, Entry::Counter(Counter::new())) {
            Entry::Counter(c) => c,
            _ => unreachable!("kind asserted above"),
        }
    }

    /// The gauge registered under `(name, labels)`, created on first use.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`], on a kind mismatch.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.entry(name, labels, Entry::Gauge(Gauge::new())) {
            Entry::Gauge(g) => g,
            _ => unreachable!("kind asserted above"),
        }
    }

    /// The histogram registered under `(name, labels)`, created on first
    /// use.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`], on a kind mismatch.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.entry(name, labels, Entry::Histogram(Histogram::new())) {
            Entry::Histogram(h) => h,
            _ => unreachable!("kind asserted above"),
        }
    }

    /// A point-in-time copy of every registered metric, ordered by name
    /// then label set.
    pub fn snapshot(&self) -> Vec<MetricSample> {
        let entries = self.entries.lock().expect("metrics registry lock");
        entries
            .iter()
            .map(|((name, labels), entry)| MetricSample {
                name: name.clone(),
                labels: labels.clone(),
                value: match entry {
                    Entry::Counter(c) => MetricValue::Counter(c.get()),
                    Entry::Gauge(g) => MetricValue::Gauge(g.get()),
                    Entry::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Renders the registry in the Prometheus text exposition format.
    pub fn render(&self) -> String {
        crate::expose::render_prometheus(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record_atomically() {
        let registry = Registry::new();
        let c = registry.counter("events_total", &[("shard", "0")]);
        c.inc();
        c.add(4);
        // The same (name, labels) yields the same underlying counter,
        // label order notwithstanding.
        assert_eq!(registry.counter("events_total", &[("shard", "0")]).get(), 5);

        let g = registry.gauge("depth", &[]);
        g.set(3.0);
        g.add(-1.5);
        assert_eq!(g.get(), 1.5);
    }

    #[test]
    fn histogram_buckets_are_exact_powers_of_two() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(2), 3);
        assert_eq!(bucket_upper_bound(64), u64::MAX);
        // Every value lands in the bucket whose bounds contain it.
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i));
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1));
            }
        }
    }

    #[test]
    fn histogram_snapshots_are_internally_consistent() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 5, 1000, u64::MAX] {
            h.observe(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 6);
        assert!(snap.is_consistent());
        assert_eq!(
            snap.sum,
            0u64.wrapping_add(1 + 5 + 5 + 1000).wrapping_add(u64::MAX)
        );
        // Sparse: only populated buckets appear, in ascending order.
        assert!(snap.buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(snap.buckets.iter().all(|&(_, n)| n > 0));

        let broken = HistogramSnapshot {
            buckets: vec![(1, 2)],
            sum: 2,
            count: 3,
        };
        assert!(!broken.is_consistent());
        let zero_sum = HistogramSnapshot {
            buckets: vec![(3, 2)],
            sum: 0,
            count: 2,
        };
        assert!(!zero_sum.is_consistent(), "nonzero observations need a sum");
    }

    #[test]
    fn concurrent_observers_lose_nothing() {
        let registry = Registry::new();
        let h = registry.histogram("latency_ns", &[]);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let h = h.clone();
                scope.spawn(move || {
                    for v in 0..10_000u64 {
                        h.observe(v);
                    }
                });
            }
        });
        let snap = h.snapshot();
        assert_eq!(snap.count, 40_000);
        assert!(snap.is_consistent());
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_is_a_loud_error() {
        let registry = Registry::new();
        registry.counter("x", &[]);
        registry.gauge("x", &[]);
    }
}
