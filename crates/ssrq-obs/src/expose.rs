//! Prometheus-style text exposition of metric snapshots.
//!
//! The writer follows the Prometheus text format: a `# TYPE` line per
//! metric name, then one sample line per label set, histograms expanded
//! into cumulative `_bucket{le=...}` series plus `_sum` and `_count`.
//! Label values use the same escaping discipline as the bench JSON writer
//! (backslash, quote and control characters escaped; everything else
//! passes through), so a hostile label value can never break a line or
//! smuggle a fake sample.

use crate::metrics::{HistogramSnapshot, MetricSample, MetricValue};
use std::fmt::Write;

/// Escapes a label value for a Prometheus sample line: backslash, double
/// quote and newline get backslash escapes, other control characters are
/// spelled as `\u{..}` — the same characters the bench JSON writer
/// refuses to emit raw.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn write_labels(out: &mut String, labels: &[(String, String)], extra: Option<(&str, &str)>) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (key, value) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    if let Some((key, value)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{key}=\"{}\"", escape_label_value(value));
    }
    out.push('}');
}

/// Formats an `f64` the way Prometheus expects (`+Inf`, `-Inf`, `NaN`).
fn format_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".into()
    } else if v == f64::INFINITY {
        "+Inf".into()
    } else if v == f64::NEG_INFINITY {
        "-Inf".into()
    } else {
        format!("{v}")
    }
}

fn write_histogram(out: &mut String, sample: &MetricSample, snapshot: &HistogramSnapshot) {
    let mut cumulative = 0u64;
    for &(index, count) in &snapshot.buckets {
        cumulative += count;
        let le = HistogramSnapshot::upper_bound(index).to_string();
        let _ = write!(out, "{}_bucket", sample.name);
        write_labels(out, &sample.labels, Some(("le", &le)));
        let _ = writeln!(out, " {cumulative}");
    }
    let _ = write!(out, "{}_bucket", sample.name);
    write_labels(out, &sample.labels, Some(("le", "+Inf")));
    let _ = writeln!(out, " {}", snapshot.count);
    let _ = write!(out, "{}_sum", sample.name);
    write_labels(out, &sample.labels, None);
    let _ = writeln!(out, " {}", snapshot.sum);
    let _ = write!(out, "{}_count", sample.name);
    write_labels(out, &sample.labels, None);
    let _ = writeln!(out, " {}", snapshot.count);
}

/// Renders metric samples in the Prometheus text exposition format.
///
/// Samples must arrive grouped by name (as [`Registry::snapshot`](crate::Registry::snapshot)
/// produces them); each name gets one `# TYPE` comment before its series.
pub fn render_prometheus(samples: &[MetricSample]) -> String {
    let mut out = String::new();
    let mut last_name: Option<&str> = None;
    for sample in samples {
        if last_name != Some(sample.name.as_str()) {
            let _ = writeln!(out, "# TYPE {} {}", sample.name, sample.value.kind());
            last_name = Some(sample.name.as_str());
        }
        match &sample.value {
            MetricValue::Counter(v) => {
                out.push_str(&sample.name);
                write_labels(&mut out, &sample.labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricValue::Gauge(v) => {
                out.push_str(&sample.name);
                write_labels(&mut out, &sample.labels, None);
                let _ = writeln!(out, " {}", format_value(*v));
            }
            MetricValue::Histogram(snapshot) => write_histogram(&mut out, sample, snapshot),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let registry = Registry::new();
        registry.counter("queries_total", &[("shard", "0")]).add(3);
        registry.counter("queries_total", &[("shard", "1")]).add(4);
        registry.gauge("queue_depth", &[]).set(2.5);
        let h = registry.histogram("latency_ns", &[]);
        h.observe(1);
        h.observe(3);
        h.observe(3);
        let text = registry.render();
        assert!(text.contains("# TYPE queries_total counter\n"));
        assert!(text.contains("queries_total{shard=\"0\"} 3\n"));
        assert!(text.contains("queries_total{shard=\"1\"} 4\n"));
        // One TYPE line per name, not per label set.
        assert_eq!(text.matches("# TYPE queries_total").count(), 1);
        assert!(text.contains("queue_depth 2.5\n"));
        // Cumulative buckets: le=1 sees 1 observation, le=3 sees all 3.
        assert!(text.contains("latency_ns_bucket{le=\"1\"} 1\n"));
        assert!(text.contains("latency_ns_bucket{le=\"3\"} 3\n"));
        assert!(text.contains("latency_ns_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("latency_ns_sum 7\n"));
        assert!(text.contains("latency_ns_count 3\n"));
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_label_value("\u{1}"), "\\u0001");
        let registry = Registry::new();
        registry
            .counter("c", &[("endpoint", "unix:/tmp/a \"b\".sock")])
            .inc();
        let text = registry.render();
        assert!(text.contains("c{endpoint=\"unix:/tmp/a \\\"b\\\".sock\"} 1\n"));
    }

    #[test]
    fn gauge_special_values_follow_prometheus_spelling() {
        assert_eq!(format_value(f64::INFINITY), "+Inf");
        assert_eq!(format_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(format_value(f64::NAN), "NaN");
    }
}
