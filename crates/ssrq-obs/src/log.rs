//! Structured, levelled stderr logging.
//!
//! A [`Logger`] is silent by default — `shard-server`'s stdout readiness
//! line (`listening on <endpoint>`) stays the only default output, so
//! existing launchers that parse it are untouched.  With a level enabled
//! (`--log info`), events come out on **stderr** as single
//! `key=value`-structured lines, e.g.:
//!
//! ```text
//! [info] event=query_served conn=3 trace=0x0000321500000001 frames=1 duration_us=412
//! ```

use std::fmt;
use std::str::FromStr;
use std::sync::atomic::{AtomicU8, Ordering};

/// Log verbosity, ordered from quietest to chattiest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Unrecoverable or dropped work.
    Error,
    /// Suspicious but survivable conditions.
    Warn,
    /// Lifecycle events: connections, queries, relocations.
    Info,
    /// Per-frame chatter.
    Debug,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }

    fn rank(self) -> u8 {
        match self {
            Level::Error => 1,
            Level::Warn => 2,
            Level::Info => 3,
            Level::Debug => 4,
        }
    }

    fn from_rank(rank: u8) -> Option<Level> {
        match rank {
            1 => Some(Level::Error),
            2 => Some(Level::Warn),
            3 => Some(Level::Info),
            4 => Some(Level::Debug),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for Level {
    type Err = String;

    fn from_str(s: &str) -> Result<Level, String> {
        match s.to_ascii_lowercase().as_str() {
            "error" => Ok(Level::Error),
            "warn" | "warning" => Ok(Level::Warn),
            "info" => Ok(Level::Info),
            "debug" => Ok(Level::Debug),
            other => Err(format!(
                "unknown log level {other:?} (expected error, warn, info or debug)"
            )),
        }
    }
}

/// A levelled stderr logger.  `Logger::default()` is fully silent; cloning
/// shares the same threshold (cheap: one byte behind an `Arc`).
#[derive(Debug, Clone, Default)]
pub struct Logger {
    threshold: std::sync::Arc<AtomicU8>,
}

impl Logger {
    /// A logger emitting events at `level` and below (quieter levels).
    pub fn with_level(level: Level) -> Logger {
        let logger = Logger::default();
        logger.set_level(Some(level));
        logger
    }

    /// Changes the threshold; `None` silences the logger.
    pub fn set_level(&self, level: Option<Level>) {
        self.threshold
            .store(level.map_or(0, Level::rank), Ordering::Relaxed);
    }

    /// The current threshold, or `None` when silent.
    pub fn level(&self) -> Option<Level> {
        Level::from_rank(self.threshold.load(Ordering::Relaxed))
    }

    /// Whether an event at `level` would be emitted — guard expensive
    /// formatting with this.
    pub fn enabled(&self, level: Level) -> bool {
        level.rank() <= self.threshold.load(Ordering::Relaxed)
    }

    /// Emits one structured line on stderr if `level` is enabled.  The
    /// message should already be `key=value` formatted; the logger only
    /// prefixes the level tag.
    pub fn log(&self, level: Level, message: &str) {
        if self.enabled(level) {
            eprintln!("[{}] {}", level.as_str(), message);
        }
    }

    /// [`log`](Logger::log) at [`Level::Error`].
    pub fn error(&self, message: &str) {
        self.log(Level::Error, message);
    }

    /// [`log`](Logger::log) at [`Level::Warn`].
    pub fn warn(&self, message: &str) {
        self.log(Level::Warn, message);
    }

    /// [`log`](Logger::log) at [`Level::Info`].
    pub fn info(&self, message: &str) {
        self.log(Level::Info, message);
    }

    /// [`log`](Logger::log) at [`Level::Debug`].
    pub fn debug(&self, message: &str) {
        self.log(Level::Debug, message);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!("info".parse::<Level>(), Ok(Level::Info));
        assert_eq!("WARN".parse::<Level>(), Ok(Level::Warn));
        assert_eq!("warning".parse::<Level>(), Ok(Level::Warn));
        assert!("verbose".parse::<Level>().is_err());
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn default_logger_is_silent() {
        let logger = Logger::default();
        assert_eq!(logger.level(), None);
        assert!(!logger.enabled(Level::Error));
    }

    #[test]
    fn threshold_gates_noisier_levels() {
        let logger = Logger::with_level(Level::Info);
        assert!(logger.enabled(Level::Error));
        assert!(logger.enabled(Level::Info));
        assert!(!logger.enabled(Level::Debug));
        let clone = logger.clone();
        clone.set_level(Some(Level::Debug));
        assert!(logger.enabled(Level::Debug), "clones share the threshold");
    }
}
