//! Span-based tracing with monotonic timestamps.
//!
//! A [`Trace`] collects the span tree of **one** query: every span records
//! its name, parent, and `[start, start + duration)` window as nanosecond
//! offsets from the trace's epoch (a [`std::time::Instant`] captured at
//! construction — never wall-clock arithmetic).  Spans open and close in
//! any order from any thread, so a speculative scatter's per-shard workers
//! can record into their query's trace concurrently.
//!
//! The trace id is a plain `u64` minted by [`next_trace_id`]; it crosses
//! process boundaries on the wire protocol's `Query` frames, and `0` is
//! reserved for "untraced" (what a legacy peer's frame implies).
//! Completed trees ([`QuerySpans`]) accumulate in bounded [`SpanLog`]s,
//! which is what a server ships back on a `Metrics` request.

use crate::metrics::MetricSample;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Mints a process-unique, never-zero trace id: the process id in the high
/// bits, a monotone counter in the low bits — so ids from coordinator and
/// shard processes of one deployment never collide.
pub fn next_trace_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(1);
    let count = COUNTER.fetch_add(1, Ordering::Relaxed) & 0xFFFF_FFFF;
    (u64::from(std::process::id()) << 32) | count.max(1)
}

/// Index of a span within its trace; parents are referenced by index.
pub type SpanId = u32;

/// One completed (or still-open) span of a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// What the span measures (e.g. `"scatter"`, `"shard unix:/…"`).
    pub name: String,
    /// Index of the enclosing span, or `None` for a root.
    pub parent: Option<SpanId>,
    /// Start offset from the trace epoch, in nanoseconds.
    pub start_ns: u64,
    /// Span length in nanoseconds (0 while still open).
    pub duration_ns: u64,
}

impl SpanRecord {
    /// End offset from the trace epoch, in nanoseconds.
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.duration_ns)
    }
}

/// The completed span tree of one query, ready to log, ship or render.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuerySpans {
    /// The query's trace id (0 = untraced/legacy).
    pub trace_id: u64,
    /// Spans in open order; parents always precede their children.
    pub spans: Vec<SpanRecord>,
}

impl QuerySpans {
    /// Total duration: the latest span end observed (roots included).
    pub fn total_ns(&self) -> u64 {
        self.spans.iter().map(SpanRecord::end_ns).max().unwrap_or(0)
    }

    /// Renders the tree as indented text, one span per line:
    /// `name start_us..end_us (duration_us)`.
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "trace {:#018x}", self.trace_id);
        for (index, span) in self.spans.iter().enumerate() {
            let mut depth = 0usize;
            let mut parent = span.parent;
            while let Some(p) = parent {
                depth += 1;
                parent = self.spans.get(p as usize).and_then(|s| s.parent);
                if depth > self.spans.len() {
                    break; // cyclic parents cannot happen via Trace, but never loop forever
                }
            }
            let _ = writeln!(
                out,
                "{:indent$}{} {}us..{}us ({}us) [{index}]",
                "",
                span.name,
                span.start_ns / 1_000,
                span.end_ns() / 1_000,
                span.duration_ns / 1_000,
                indent = 2 * (depth + 1),
            );
        }
        out
    }
}

/// A live trace being recorded: open spans, close them, then
/// [`finish`](Trace::finish) into a [`QuerySpans`].
#[derive(Debug)]
pub struct Trace {
    trace_id: u64,
    epoch: Instant,
    spans: Mutex<Vec<SpanRecord>>,
}

impl Trace {
    /// A fresh trace under `trace_id`, with its epoch at "now".
    pub fn new(trace_id: u64) -> Trace {
        Trace {
            trace_id,
            epoch: Instant::now(),
            spans: Mutex::new(Vec::new()),
        }
    }

    /// This trace's id.
    pub fn trace_id(&self) -> u64 {
        self.trace_id
    }

    fn now_ns(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Opens a span starting now; close it with [`Trace::close`].  The
    /// returned id is stable immediately, so children may reference it
    /// before the parent closes.
    pub fn open(&self, name: &str, parent: Option<SpanId>) -> SpanId {
        let start_ns = self.now_ns();
        let mut spans = self.spans.lock().expect("trace span lock");
        spans.push(SpanRecord {
            name: name.to_owned(),
            parent,
            start_ns,
            duration_ns: 0,
        });
        (spans.len() - 1) as SpanId
    }

    /// Closes span `id`, fixing its duration at "now − start".  Closing an
    /// already-closed span extends it (last close wins); closing an
    /// unknown id is a no-op.
    pub fn close(&self, id: SpanId) {
        let now = self.now_ns();
        let mut spans = self.spans.lock().expect("trace span lock");
        if let Some(span) = spans.get_mut(id as usize) {
            span.duration_ns = now.saturating_sub(span.start_ns);
        }
    }

    /// Records a closed span from explicit offsets — for re-parenting
    /// measurements taken outside the trace (e.g. a server-reported
    /// per-phase timing).
    pub fn record(&self, name: &str, parent: Option<SpanId>, start_ns: u64, duration_ns: u64) {
        self.spans
            .lock()
            .expect("trace span lock")
            .push(SpanRecord {
                name: name.to_owned(),
                parent,
                start_ns,
                duration_ns,
            });
    }

    /// Times `f` as a span under `parent`.
    pub fn time<R>(&self, name: &str, parent: Option<SpanId>, f: impl FnOnce() -> R) -> R {
        let id = self.open(name, parent);
        let result = f();
        self.close(id);
        result
    }

    /// Consumes the trace into its completed span tree.
    pub fn finish(self) -> QuerySpans {
        QuerySpans {
            trace_id: self.trace_id,
            spans: self.spans.into_inner().expect("trace span lock"),
        }
    }
}

/// A bounded ring of recent completed span trees — what a shard server
/// retains per query and ships back on a `Metrics` request.
#[derive(Debug)]
pub struct SpanLog {
    capacity: usize,
    entries: Mutex<std::collections::VecDeque<QuerySpans>>,
}

impl SpanLog {
    /// A log retaining the most recent `capacity` entries (at least 1).
    pub fn new(capacity: usize) -> SpanLog {
        SpanLog {
            capacity: capacity.max(1),
            entries: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Appends one completed query's spans, evicting the oldest entry when
    /// full.
    pub fn push(&self, spans: QuerySpans) {
        let mut entries = self.entries.lock().expect("span log lock");
        if entries.len() == self.capacity {
            entries.pop_front();
        }
        entries.push_back(spans);
    }

    /// The retained entries, oldest first.
    pub fn recent(&self) -> Vec<QuerySpans> {
        self.entries
            .lock()
            .expect("span log lock")
            .iter()
            .cloned()
            .collect()
    }
}

/// Everything one process exposes for introspection: its metric snapshot
/// plus its recent span trees.  This is the payload of the wire protocol's
/// `Metrics` response and of `shard-server --introspect`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// The process's registry snapshot.
    pub metrics: Vec<MetricSample>,
    /// Recent completed query span trees, oldest first.
    pub spans: Vec<QuerySpans>,
}

impl ObsReport {
    /// The counter sample named `name` whose labels include `labels`, if
    /// any — convenience for validators.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        self.metrics.iter().find_map(|sample| {
            let matches = sample.name == name
                && labels
                    .iter()
                    .all(|&(k, v)| sample.labels.iter().any(|(sk, sv)| sk == k && sv == v));
            match (&sample.value, matches) {
                (crate::metrics::MetricValue::Counter(v), true) => Some(*v),
                _ => None,
            }
        })
    }

    /// Whether any retained span tree carries `trace_id`.
    pub fn has_trace(&self, trace_id: u64) -> bool {
        self.spans.iter().any(|q| q.trace_id == trace_id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let a = next_trace_id();
        let b = next_trace_id();
        assert_ne!(a, 0);
        assert_ne!(a, b);
        assert_eq!(a >> 32, u64::from(std::process::id()));
    }

    #[test]
    fn spans_nest_and_order_sanely() {
        let trace = Trace::new(42);
        let root = trace.open("query", None);
        let child = trace.open("scatter", Some(root));
        std::thread::sleep(std::time::Duration::from_millis(2));
        trace.close(child);
        trace.close(root);
        let spans = trace.finish();
        assert_eq!(spans.trace_id, 42);
        assert_eq!(spans.spans.len(), 2);
        let (root, child) = (&spans.spans[0], &spans.spans[1]);
        assert_eq!(child.parent, Some(0));
        assert!(child.start_ns >= root.start_ns);
        assert!(child.end_ns() <= root.end_ns(), "child closes before root");
        assert!(root.duration_ns >= 2_000_000);
        assert!(spans.total_ns() >= root.duration_ns);
        let rendered = spans.render();
        assert!(rendered.contains("query"));
        assert!(rendered.contains("    scatter"), "children indent deeper");
    }

    #[test]
    fn concurrent_span_recording_is_safe() {
        let trace = Trace::new(7);
        let root = trace.open("query", None);
        std::thread::scope(|scope| {
            for i in 0..4 {
                let trace = &trace;
                scope.spawn(move || {
                    let id = trace.open(&format!("shard {i}"), Some(root));
                    trace.close(id);
                });
            }
        });
        trace.close(root);
        assert_eq!(trace.finish().spans.len(), 5);
    }

    #[test]
    fn span_log_is_bounded() {
        let log = SpanLog::new(2);
        for id in 1..=3u64 {
            log.push(QuerySpans {
                trace_id: id,
                spans: vec![],
            });
        }
        let recent = log.recent();
        assert_eq!(
            recent.iter().map(|q| q.trace_id).collect::<Vec<_>>(),
            vec![2, 3]
        );
        let report = ObsReport {
            metrics: vec![],
            spans: recent,
        };
        assert!(report.has_trace(3));
        assert!(!report.has_trace(1));
    }
}
