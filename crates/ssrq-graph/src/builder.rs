use crate::{CsrLayout, Edge, EdgeWeight, GraphError, NodeId, SocialGraph};

/// Incremental builder for a [`SocialGraph`].
///
/// Edges are collected as `(u, v, w)` triples and converted into the CSR
/// layout by [`GraphBuilder::build`].  Duplicate edges are collapsed keeping
/// the smallest weight (the strongest friendship); self-loops are rejected
/// because they can never influence a shortest-path distance between two
/// distinct users.
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    node_count: usize,
    edges: Vec<(NodeId, NodeId, EdgeWeight)>,
}

impl GraphBuilder {
    /// Creates a builder for a graph with `node_count` vertices
    /// (ids `0 .. node_count`).
    pub fn new(node_count: usize) -> Self {
        GraphBuilder {
            node_count,
            edges: Vec::new(),
        }
    }

    /// Number of vertices the final graph will have.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of (possibly duplicate) edges added so far.
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Ensures the builder has room for vertex `v` (growing the vertex count
    /// if necessary).
    pub fn ensure_node(&mut self, v: NodeId) {
        if v as usize >= self.node_count {
            self.node_count = v as usize + 1;
        }
    }

    /// Adds an undirected edge between `u` and `v` with weight `w`.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] if either endpoint is out of range.
    /// * [`GraphError::InvalidEdge`] for self-loops or non-positive /
    ///   non-finite weights.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId, w: EdgeWeight) -> Result<(), GraphError> {
        if u as usize >= self.node_count {
            return Err(GraphError::UnknownNode(u));
        }
        if v as usize >= self.node_count {
            return Err(GraphError::UnknownNode(v));
        }
        if u == v {
            return Err(GraphError::InvalidEdge(format!("self loop on vertex {u}")));
        }
        if !w.is_finite() || w <= 0.0 {
            return Err(GraphError::InvalidEdge(format!(
                "edge ({u}, {v}) has non-positive or non-finite weight {w}"
            )));
        }
        self.edges.push((u, v, w));
        Ok(())
    }

    /// Convenience constructor: builds a graph directly from an edge list.
    pub fn from_edges(
        node_count: usize,
        edges: impl IntoIterator<Item = (NodeId, NodeId, EdgeWeight)>,
    ) -> Result<SocialGraph, GraphError> {
        let mut b = GraphBuilder::new(node_count);
        for (u, v, w) in edges {
            b.add_edge(u, v, w)?;
        }
        Ok(b.build())
    }

    /// Finalizes the builder into a CSR [`SocialGraph`] in the requested
    /// physical layout (see [`CsrLayout`]); topology, weights and iteration
    /// order are identical for every layout.
    pub fn build_with_layout(self, layout: CsrLayout) -> SocialGraph {
        let graph = self.build();
        match layout {
            CsrLayout::Standard => graph,
            CsrLayout::Compressed => graph.with_layout(CsrLayout::Compressed),
        }
    }

    /// Finalizes the builder into a CSR [`SocialGraph`].
    ///
    /// Duplicate undirected edges are merged keeping the minimum weight.
    pub fn build(self) -> SocialGraph {
        let n = self.node_count;
        // Canonicalize (u < v), sort, and deduplicate keeping the minimum
        // weight per pair.
        let mut canon: Vec<(NodeId, NodeId, EdgeWeight)> = self
            .edges
            .into_iter()
            .map(|(u, v, w)| if u < v { (u, v, w) } else { (v, u, w) })
            .collect();
        canon.sort_by(|a, b| {
            (a.0, a.1)
                .cmp(&(b.0, b.1))
                .then(a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal))
        });
        canon.dedup_by(|next, prev| {
            if next.0 == prev.0 && next.1 == prev.1 {
                // keep the smaller weight, which sorts first
                true
            } else {
                false
            }
        });

        // Count degrees for both directions.
        let mut degrees = vec![0u32; n];
        for &(u, v, _) in &canon {
            degrees[u as usize] += 1;
            degrees[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degrees[i];
        }
        let total = offsets[n] as usize;
        let mut edges = vec![Edge { to: 0, weight: 0.0 }; total];
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        for &(u, v, w) in &canon {
            edges[cursor[u as usize] as usize] = Edge { to: v, weight: w };
            cursor[u as usize] += 1;
            edges[cursor[v as usize] as usize] = Edge { to: u, weight: w };
            cursor[v as usize] += 1;
        }
        SocialGraph::from_csr(offsets, edges, canon.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_empty_graph() {
        let g = GraphBuilder::new(0).build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn rejects_bad_edges() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.add_edge(0, 3, 1.0), Err(GraphError::UnknownNode(3)));
        assert_eq!(b.add_edge(5, 0, 1.0), Err(GraphError::UnknownNode(5)));
        assert!(matches!(
            b.add_edge(1, 1, 1.0),
            Err(GraphError::InvalidEdge(_))
        ));
        assert!(matches!(
            b.add_edge(0, 1, 0.0),
            Err(GraphError::InvalidEdge(_))
        ));
        assert!(matches!(
            b.add_edge(0, 1, -2.0),
            Err(GraphError::InvalidEdge(_))
        ));
        assert!(matches!(
            b.add_edge(0, 1, f64::NAN),
            Err(GraphError::InvalidEdge(_))
        ));
    }

    #[test]
    fn duplicate_edges_keep_minimum_weight() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1, 5.0).unwrap();
        b.add_edge(1, 0, 2.0).unwrap();
        b.add_edge(0, 1, 7.0).unwrap();
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.edge_weight(0, 1), Some(2.0));
    }

    #[test]
    fn ensure_node_grows_vertex_count() {
        let mut b = GraphBuilder::new(1);
        b.ensure_node(10);
        assert_eq!(b.node_count(), 11);
        b.add_edge(0, 10, 1.0).unwrap();
        let g = b.build();
        assert_eq!(g.node_count(), 11);
        assert_eq!(g.edge_weight(0, 10), Some(1.0));
    }

    #[test]
    fn from_edges_builds_symmetric_adjacency() {
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)]).unwrap();
        assert_eq!(g.edge_count(), 3);
        for (u, v, w) in [(0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0)] {
            assert_eq!(g.edge_weight(u, v), Some(w));
            assert_eq!(g.edge_weight(v, u), Some(w));
        }
    }

    #[test]
    fn pending_edge_counter() {
        let mut b = GraphBuilder::new(3);
        assert_eq!(b.pending_edges(), 0);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 1.0).unwrap();
        assert_eq!(b.pending_edges(), 2);
    }
}
