use crate::dijkstra::HeapItem;
use crate::{Distance, IncrementalDijkstra, LandmarkSet, NodeId, SearchScratch, SocialGraph};
use std::collections::{BinaryHeap, HashMap};

/// How much work the engine may reuse across point-to-point computations
/// from the same source.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SharingMode {
    /// No reuse: every call runs a fresh bidirectional search.  This is the
    /// behaviour of the paper's AIS-BID baseline (§6, Figure 10).
    None,
    /// Distance caching and forward-heap caching (§5.2): the forward
    /// Dijkstra expansion from the source is shared across calls and
    /// previously computed shortest paths are remembered.
    Shared,
}

/// Counters describing the work performed by a [`GraphDistanceEngine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DistanceEngineStats {
    /// Number of `distance()` calls.
    pub distance_calls: usize,
    /// Calls answered directly from the forward-search or path caches.
    pub cache_hits: usize,
    /// Vertices settled by the (shared or per-call) forward search.
    pub forward_settles: usize,
    /// Vertices settled by reverse A* searches.
    pub reverse_settles: usize,
    /// Edge relaxations attempted across every search the engine ran (the
    /// shared forward expansion plus all per-call bidirectional searches).
    pub edge_relaxations: usize,
}

/// A point-to-point search keyed by hash maps instead of dense vectors, so
/// that creating one per target stays cheap even on large graphs.  Used for
/// the reverse (ALT A*) direction and for the un-shared forward direction of
/// [`SharingMode::None`].
struct HashSearch<'a> {
    source: NodeId,
    goal_heuristic: Option<(&'a LandmarkSet, NodeId)>,
    dist: HashMap<NodeId, Distance>,
    settled: HashMap<NodeId, Distance>,
    parent: HashMap<NodeId, NodeId>,
    heap: BinaryHeap<HeapItem>,
    settles: usize,
    relaxations: usize,
}

impl<'a> HashSearch<'a> {
    fn new(source: NodeId, goal_heuristic: Option<(&'a LandmarkSet, NodeId)>) -> Self {
        let mut heap = BinaryHeap::new();
        let h0 = match goal_heuristic {
            Some((lms, goal)) => finite_or_large(lms.lower_bound(source, goal)),
            None => 0.0,
        };
        heap.push(HeapItem {
            key: h0,
            node: source,
        });
        let mut dist = HashMap::new();
        dist.insert(source, 0.0);
        HashSearch {
            source,
            goal_heuristic,
            dist,
            settled: HashMap::new(),
            parent: HashMap::new(),
            heap,
            settles: 0,
            relaxations: 0,
        }
    }

    fn heuristic(&self, v: NodeId) -> Distance {
        match self.goal_heuristic {
            Some((lms, goal)) => finite_or_large(lms.lower_bound(v, goal)),
            None => 0.0,
        }
    }

    fn next_settled(&mut self, graph: &SocialGraph) -> Option<(NodeId, Distance)> {
        while let Some(HeapItem { node, .. }) = self.heap.pop() {
            if self.settled.contains_key(&node) {
                continue;
            }
            let g = *self.dist.get(&node).expect("heap entries have distances");
            self.settled.insert(node, g);
            self.settles += 1;
            for edge in graph.neighbors(node) {
                self.relaxations += 1;
                let cand = g + edge.weight;
                let better = self
                    .dist
                    .get(&edge.to)
                    .map(|&cur| cand < cur)
                    .unwrap_or(true);
                if better && !self.settled.contains_key(&edge.to) {
                    self.dist.insert(edge.to, cand);
                    self.parent.insert(edge.to, node);
                    self.heap.push(HeapItem {
                        key: cand + self.heuristic(edge.to),
                        node: edge.to,
                    });
                }
            }
            return Some((node, g));
        }
        None
    }

    fn settled_distance(&self, v: NodeId) -> Option<Distance> {
        self.settled.get(&v).copied()
    }

    /// Lower bound on the key of any vertex still to be settled.
    fn peek_key(&self) -> Option<Distance> {
        self.heap.peek().map(|e| e.key)
    }

    fn exhausted(&self) -> bool {
        self.heap.is_empty()
    }

    /// Path from this search's source to `v` (both inclusive); `None` if `v`
    /// has not been reached.  Kept for diagnostic use by future callers (the
    /// shared engine no longer reconstructs reverse paths).
    #[allow(dead_code)]
    fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        self.settled.get(&v)?;
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = *self.parent.get(&cur)?;
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }
}

#[inline]
fn finite_or_large(x: Distance) -> Distance {
    if x.is_finite() {
        x
    } else {
        f64::MAX / 4.0
    }
}

/// The graph-distance submodule of AIS (Algorithm 3, *GraphDist*).
///
/// The engine computes exact shortest-path distances from a fixed source
/// (the query user `v_q`) to arbitrary target vertices.
///
/// * With [`SharingMode::None`] (the AIS-BID baseline) every call runs a
///   fresh bidirectional search: a plain Dijkstra from the source and an A*
///   expansion from the target guided by the landmark (ALT) heuristic.
///   Nothing is reused between calls.
/// * With [`SharingMode::Shared`] the engine applies the §5.2 optimizations:
///   **distance caching** (targets already settled by the forward search, or
///   lying on a previously reported shortest path, are answered without any
///   traversal) and **forward heap caching** (a single resumable Dijkstra
///   expansion from the source is paused and resumed across calls).  Because
///   every SSRQ evaluation shares the same source, resuming the forward
///   expansion until the target settles reuses *all* previous work, whereas
///   per-target reverse searches would be discarded; the shared mode
///   therefore leans entirely on the forward expansion — this is the
///   forward-heap-caching idea of the paper taken to its limit (the
///   trade-off is documented in `DESIGN.md`).
pub struct GraphDistanceEngine<'g, 's> {
    graph: &'g SocialGraph,
    landmarks: &'g LandmarkSet,
    source: NodeId,
    mode: SharingMode,
    forward: IncrementalDijkstra<'s>,
    /// The `T` table: exact distance from the source for vertices on
    /// previously computed shortest paths.
    path_dist: HashMap<NodeId, Distance>,
    stats: DistanceEngineStats,
    /// Relaxations performed by completed per-call [`HashSearch`]es (the
    /// live forward expansion reports its own count).
    hash_relaxations: usize,
}

impl<'g, 's> GraphDistanceEngine<'g, 's> {
    /// Creates an engine rooted at `source`, drawing the forward-search
    /// state from `scratch` (reset on construction, so the scratch may be
    /// reused across queries).
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a vertex of `graph`.
    pub fn new(
        graph: &'g SocialGraph,
        landmarks: &'g LandmarkSet,
        source: NodeId,
        mode: SharingMode,
        scratch: &'s mut SearchScratch,
    ) -> Self {
        GraphDistanceEngine {
            graph,
            landmarks,
            source,
            mode,
            forward: IncrementalDijkstra::new(graph, source, scratch),
            path_dist: HashMap::new(),
            stats: DistanceEngineStats::default(),
            hash_relaxations: 0,
        }
    }

    /// The query (source) vertex.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The sharing mode the engine was created with.
    pub fn mode(&self) -> SharingMode {
        self.mode
    }

    /// Work counters accumulated so far.
    pub fn stats(&self) -> DistanceEngineStats {
        let mut stats = self.stats;
        stats.edge_relaxations = self.forward.relaxations() + self.hash_relaxations;
        stats
    }

    /// The `β` bound of §5.3: the distance of the last vertex settled by the
    /// (shared) forward search.  Every vertex not yet visited by the forward
    /// search is at least this far from the source.  Zero until the forward
    /// search has made progress, and always zero in [`SharingMode::None`].
    pub fn beta(&self) -> Distance {
        match self.mode {
            SharingMode::Shared => self.forward.frontier_bound(),
            SharingMode::None => 0.0,
        }
    }

    /// Exact distance of `v` if it is already known without further search
    /// (settled by the forward expansion, or on a cached shortest path).
    pub fn known_distance(&self, v: NodeId) -> Option<Distance> {
        if v == self.source {
            return Some(0.0);
        }
        match self.mode {
            SharingMode::Shared => self
                .forward
                .settled_distance(v)
                .or_else(|| self.path_dist.get(&v).copied()),
            SharingMode::None => None,
        }
    }

    /// Returns `true` when `v` has been visited (settled) by the shared
    /// forward search.
    pub fn visited_by_forward(&self, v: NodeId) -> bool {
        self.mode == SharingMode::Shared && self.forward.is_settled(v)
    }

    /// Number of vertices settled by the shared forward search so far.
    pub fn forward_settled_count(&self) -> usize {
        self.forward.settled_count()
    }

    /// Computes the exact graph distance from the source to `target`
    /// (`f64::INFINITY` when unreachable).
    pub fn distance(&mut self, target: NodeId) -> Distance {
        self.stats.distance_calls += 1;
        if target == self.source {
            return 0.0;
        }
        match self.mode {
            SharingMode::Shared => {
                if let Some(d) = self.known_distance(target) {
                    self.stats.cache_hits += 1;
                    return d;
                }
                self.shared_forward(target)
            }
            SharingMode::None => self.fresh_bidirectional(target),
        }
    }

    /// Computes the distance to `target`, giving up as soon as the distance
    /// is provably at least `budget` (in which case `f64::INFINITY` is
    /// returned).
    ///
    /// This is the "evaluate or disqualify" primitive the AIS search needs:
    /// a candidate whose social distance reaches the budget can no longer
    /// enter the result, so there is no point computing its exact value.
    /// In [`SharingMode::Shared`] the check is essentially free — the shared
    /// forward expansion simply stops growing once its frontier passes the
    /// budget.  In [`SharingMode::None`] the budget is ignored and the full
    /// bidirectional search runs (the AIS-BID baseline has no such
    /// optimization).
    pub fn distance_within(&mut self, target: NodeId, budget: Distance) -> Distance {
        self.stats.distance_calls += 1;
        if target == self.source {
            return 0.0;
        }
        match self.mode {
            SharingMode::Shared => {
                if let Some(d) = self.known_distance(target) {
                    self.stats.cache_hits += 1;
                    return if d < budget { d } else { f64::INFINITY };
                }
                if self.landmarks.lower_bound(self.source, target) >= budget {
                    return f64::INFINITY;
                }
                let before = self.forward.settled_count();
                let mut result = f64::INFINITY;
                while !self.forward.is_settled(target) {
                    if self.forward.frontier_bound() >= budget {
                        break;
                    }
                    if self.forward.next_settled(self.graph).is_none() {
                        break;
                    }
                }
                if let Some(d) = self.forward.settled_distance(target) {
                    if d < budget {
                        result = d;
                        self.path_dist.entry(target).or_insert(d);
                    }
                }
                self.stats.forward_settles += self.forward.settled_count() - before;
                result
            }
            SharingMode::None => {
                let d = self.fresh_bidirectional(target);
                if d < budget {
                    d
                } else {
                    f64::INFINITY
                }
            }
        }
    }

    /// Resumes the shared forward expansion until `target` settles
    /// (distance caching + forward heap caching of §5.2).
    ///
    /// A target provably disconnected from the source (one of the two
    /// reaches a landmark the other cannot) is answered immediately, so the
    /// expansion never drains the whole component just to prove
    /// unreachability.
    fn shared_forward(&mut self, target: NodeId) -> Distance {
        if self
            .landmarks
            .lower_bound(self.source, target)
            .is_infinite()
        {
            return f64::INFINITY;
        }
        let before = self.forward.settled_count();
        let d = self.forward.run_until_settled(self.graph, target);
        self.stats.forward_settles += self.forward.settled_count() - before;
        // Remember the vertices on the discovered shortest path (the `T`
        // table); they are settled, so their distances are already served by
        // the forward cache, but keeping the entry makes `known_distance`
        // cheap even after the engine is cloned or paths are queried.
        if d.is_finite() {
            self.path_dist.entry(target).or_insert(d);
        }
        d
    }

    /// Fresh, non-shared bidirectional search (forward Dijkstra + reverse
    /// ALT A*), used by [`SharingMode::None`].
    fn fresh_bidirectional(&mut self, target: NodeId) -> Distance {
        let mut forward = HashSearch::new(self.source, None);
        let mut reverse = HashSearch::new(target, Some((self.landmarks, self.source)));
        let mut min_dist = f64::INFINITY;

        loop {
            let fwd_key = forward.peek_key();
            let rev_key = reverse.peek_key();
            if let (None, None) = (fwd_key, rev_key) {
                break;
            }
            // Termination: no remaining meeting can beat min_dist.
            if let Some(rk) = rev_key {
                if min_dist <= rk + 1e-12 {
                    break;
                }
            } else if forward.exhausted() {
                break;
            }
            if let Some(fk) = fwd_key {
                if min_dist <= fk + 1e-12 {
                    break;
                }
            } else if reverse.exhausted() {
                break;
            }

            if let Some((vf, df)) = forward.next_settled(self.graph) {
                self.stats.forward_settles += 1;
                if let Some(dr) = reverse.settled_distance(vf) {
                    if df + dr < min_dist {
                        min_dist = df + dr;
                    }
                }
                if vf == target {
                    min_dist = df;
                    break;
                }
            }
            if let Some((vr, dr)) = reverse.next_settled(self.graph) {
                self.stats.reverse_settles += 1;
                if let Some(df) = forward.settled_distance(vr) {
                    if df + dr < min_dist {
                        min_dist = df + dr;
                    }
                }
                if vr == self.source {
                    min_dist = min_dist.min(dr);
                    break;
                }
            }
        }
        self.hash_relaxations += forward.relaxations + reverse.relaxations;
        min_dist
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra_all, GraphBuilder, LandmarkSelection};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_graph(n: usize, extra_edges: usize, seed: u64) -> SocialGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            let u = rng.gen_range(0..v);
            b.add_edge(u as NodeId, v as NodeId, rng.gen_range(0.1..2.0))
                .unwrap();
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u as NodeId, v as NodeId, rng.gen_range(0.1..2.0))
                    .unwrap();
            }
        }
        b.build()
    }

    fn check_engine_against_dijkstra(mode: SharingMode, seed: u64) {
        let g = random_graph(120, 260, seed);
        let lms = LandmarkSet::build(&g, 4, LandmarkSelection::FarthestFirst, seed).unwrap();
        let mut rng = StdRng::seed_from_u64(seed + 77);
        let mut scratch = SearchScratch::new();
        for _ in 0..10 {
            let source = rng.gen_range(0..120) as NodeId;
            let truth = dijkstra_all(&g, source);
            let mut engine = GraphDistanceEngine::new(&g, &lms, source, mode, &mut scratch);
            // Ask for a mix of random targets, including repeats, in random
            // order, to stress the caches.
            for _ in 0..40 {
                let t = rng.gen_range(0..120) as NodeId;
                let got = engine.distance(t);
                assert!(
                    (got - truth[t as usize]).abs() < 1e-9,
                    "mode {mode:?}, seed {seed}: d({source},{t}) = {got}, want {}",
                    truth[t as usize]
                );
            }
        }
    }

    #[test]
    fn shared_mode_matches_dijkstra() {
        for seed in 0..4 {
            check_engine_against_dijkstra(SharingMode::Shared, seed);
        }
    }

    #[test]
    fn unshared_mode_matches_dijkstra() {
        for seed in 0..4 {
            check_engine_against_dijkstra(SharingMode::None, seed);
        }
    }

    #[test]
    fn source_distance_is_zero() {
        let g = random_graph(20, 30, 1);
        let lms = LandmarkSet::build(&g, 2, LandmarkSelection::FarthestFirst, 1).unwrap();
        let mut scratch = SearchScratch::new();
        let mut e = GraphDistanceEngine::new(&g, &lms, 5, SharingMode::Shared, &mut scratch);
        assert_eq!(e.distance(5), 0.0);
        assert_eq!(e.known_distance(5), Some(0.0));
    }

    #[test]
    fn disconnected_targets_are_infinite() {
        let g = GraphBuilder::from_edges(6, vec![(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)]).unwrap();
        let lms = LandmarkSet::build(&g, 2, LandmarkSelection::FarthestFirst, 1).unwrap();
        let mut scratch = SearchScratch::new();
        for mode in [SharingMode::Shared, SharingMode::None] {
            let mut e = GraphDistanceEngine::new(&g, &lms, 0, mode, &mut scratch);
            assert!(e.distance(4).is_infinite(), "mode {mode:?}");
            assert!(e.distance(5).is_infinite(), "mode {mode:?}");
            assert_eq!(e.distance(2), 2.0, "mode {mode:?}");
        }
    }

    #[test]
    fn shared_mode_hits_cache_on_repeat_queries() {
        let g = random_graph(80, 200, 3);
        let lms = LandmarkSet::build(&g, 4, LandmarkSelection::FarthestFirst, 3).unwrap();
        let mut scratch = SearchScratch::new();
        let mut e = GraphDistanceEngine::new(&g, &lms, 0, SharingMode::Shared, &mut scratch);
        let d1 = e.distance(42);
        let calls_before = e.stats().cache_hits;
        let d2 = e.distance(42);
        assert_eq!(d1, d2);
        assert_eq!(e.stats().cache_hits, calls_before + 1);
    }

    #[test]
    fn beta_is_monotone_and_bounds_unvisited_vertices() {
        let g = random_graph(100, 250, 5);
        let lms = LandmarkSet::build(&g, 4, LandmarkSelection::FarthestFirst, 5).unwrap();
        let truth = dijkstra_all(&g, 7);
        let mut scratch = SearchScratch::new();
        let mut e = GraphDistanceEngine::new(&g, &lms, 7, SharingMode::Shared, &mut scratch);
        let mut prev_beta = 0.0;
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..25 {
            let t = rng.gen_range(0..100) as NodeId;
            let _ = e.distance(t);
            let beta = e.beta();
            assert!(beta >= prev_beta);
            prev_beta = beta;
            for v in g.nodes() {
                if !e.visited_by_forward(v) {
                    assert!(
                        truth[v as usize] >= beta - 1e-9,
                        "beta {beta} exceeds distance {} of unvisited {v}",
                        truth[v as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn stats_track_work() {
        let g = random_graph(60, 120, 9);
        let lms = LandmarkSet::build(&g, 3, LandmarkSelection::FarthestFirst, 9).unwrap();
        let mut scratch = SearchScratch::new();
        let mut e = GraphDistanceEngine::new(&g, &lms, 0, SharingMode::Shared, &mut scratch);
        assert_eq!(e.stats(), DistanceEngineStats::default());
        e.distance(30);
        e.distance(31);
        let s = e.stats();
        assert_eq!(s.distance_calls, 2);
        assert!(s.forward_settles + s.reverse_settles > 0);
        assert_eq!(e.mode(), SharingMode::Shared);
        assert_eq!(e.source(), 0);
    }

    #[test]
    fn distance_within_budget_is_exact_or_infinite() {
        let g = random_graph(100, 220, 21);
        let lms = LandmarkSet::build(&g, 4, LandmarkSelection::FarthestFirst, 21).unwrap();
        let truth = dijkstra_all(&g, 3);
        let mut scratch = SearchScratch::new();
        for mode in [SharingMode::Shared, SharingMode::None] {
            let mut e = GraphDistanceEngine::new(&g, &lms, 3, mode, &mut scratch);
            let mut rng = StdRng::seed_from_u64(5);
            for _ in 0..60 {
                let t = rng.gen_range(0..100) as NodeId;
                let budget = rng.gen_range(0.0..6.0);
                let got = e.distance_within(t, budget);
                if truth[t as usize] < budget {
                    assert!(
                        (got - truth[t as usize]).abs() < 1e-9,
                        "mode {mode:?}: expected exact distance below budget"
                    );
                } else {
                    assert!(
                        got.is_infinite(),
                        "mode {mode:?}: d({t}) = {} >= budget {budget}, got {got}",
                        truth[t as usize]
                    );
                }
            }
        }
    }

    #[test]
    fn distance_within_does_not_expand_past_the_budget() {
        let g = random_graph(200, 400, 33);
        let lms = LandmarkSet::build(&g, 4, LandmarkSelection::FarthestFirst, 33).unwrap();
        let mut scratch = SearchScratch::new();
        let mut e = GraphDistanceEngine::new(&g, &lms, 0, SharingMode::Shared, &mut scratch);
        let budget = 0.5;
        for t in [150u32, 160, 170, 180, 190] {
            let _ = e.distance_within(t, budget);
        }
        // The shared frontier never grows meaningfully past the budget: at
        // most one settle beyond it per call.
        assert!(
            e.beta() <= budget + 2.0,
            "beta {} grew past budget",
            e.beta()
        );
    }

    #[test]
    fn known_distance_reflects_forward_progress() {
        let g = random_graph(50, 100, 13);
        let lms = LandmarkSet::build(&g, 3, LandmarkSelection::FarthestFirst, 13).unwrap();
        let truth = dijkstra_all(&g, 2);
        let mut scratch = SearchScratch::new();
        let mut e = GraphDistanceEngine::new(&g, &lms, 2, SharingMode::Shared, &mut scratch);
        // Force plenty of forward progress.
        for t in [49, 48, 47, 46] {
            e.distance(t);
        }
        let mut known = 0;
        for v in g.nodes() {
            if let Some(d) = e.known_distance(v) {
                assert!((d - truth[v as usize]).abs() < 1e-9);
                known += 1;
            }
        }
        assert!(known > 1, "expected some cached distances");
        assert!(e.forward_settled_count() > 0);
    }
}
