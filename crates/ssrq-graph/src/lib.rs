//! Social-graph substrate for the SSRQ (Social and Spatial Ranking Query)
//! system.
//!
//! The paper ("Joint Search by Social and Spatial Proximity", Mouratidis et
//! al.) measures social proximity as the weighted shortest-path distance
//! between users in an undirected social graph.  Every SSRQ processing
//! algorithm (SFA, SPA, TSA, AIS) therefore needs fast graph primitives;
//! this crate provides them from scratch:
//!
//! * [`SocialGraph`] — a compact CSR (compressed sparse row) adjacency
//!   representation of the weighted, undirected social network, built via
//!   [`GraphBuilder`].
//! * [`IncrementalDijkstra`] — a resumable Dijkstra expansion that yields
//!   one settled vertex at a time.  SFA and the social repository of TSA use
//!   it directly; AIS shares one instance across all of its point-to-point
//!   computations (the *forward heap caching* of §5.2).
//! * [`astar`] — point-to-point A* search with pluggable heuristics,
//!   including the landmark (ALT) heuristic.
//! * [`LandmarkSet`] — landmark selection and per-vertex distance vectors,
//!   the basis of both the ALT heuristic and the AIS social summaries.
//! * [`GraphDistanceEngine`] — the bidirectional point-to-point module of
//!   §5.2 (Algorithm 3 *GraphDist*): plain-Dijkstra forward search, ALT A*
//!   reverse search, distance caching and forward-heap caching.
//! * [`ContractionHierarchy`] — a Contraction Hierarchies implementation
//!   used by the `*-CH` baselines of the evaluation (Figure 8).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod astar;
mod builder;
mod ch;
mod dijkstra;
mod distance_engine;
mod error;
mod graph;
mod landmarks;
mod parallel;
mod scratch;

pub use builder::GraphBuilder;
pub use ch::{ChParams, ChQueryScratch, ContractionHierarchy};
pub use dijkstra::{dijkstra_all, dijkstra_all_with, dijkstra_distance, IncrementalDijkstra};
pub use distance_engine::{DistanceEngineStats, GraphDistanceEngine, SharingMode};
pub use error::GraphError;
pub use graph::{CsrLayout, Edge, Neighbors, NodeId, SocialGraph};
pub use landmarks::{LandmarkSelection, LandmarkSet};
pub use parallel::{dijkstra_all_parallel, pseudo_diameter};
pub use scratch::SearchScratch;

/// Weight of a social edge; smaller weights denote stronger friendships
/// (§3 of the paper).
pub type EdgeWeight = f64;

/// Distance value used throughout the graph substrate.  Unreachable vertices
/// have distance [`f64::INFINITY`].
pub type Distance = f64;
