use crate::{Distance, NodeId, SearchScratch, SocialGraph};
use std::cmp::Ordering;

/// A min-heap entry (distance key + vertex) used by all graph searches.
#[derive(Debug, Clone, Copy)]
pub(crate) struct HeapItem {
    pub key: f64,
    pub node: NodeId,
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.node == other.node
    }
}
impl Eq for HeapItem {}
impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse ordering on the key: BinaryHeap is a max-heap, searches
        // need a min-heap.  Ties broken on node id for determinism.
        other
            .key
            .partial_cmp(&self.key)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// A resumable Dijkstra expansion from a fixed source vertex.
///
/// The expansion yields settled vertices one at a time in non-decreasing
/// distance order, which is exactly the "sorted access" on the social
/// repository that SFA and TSA require (§4).  The AIS graph-distance module
/// keeps one instance alive for the whole query and resumes it between
/// point-to-point computations (*forward heap caching*, §5.2) — possible
/// precisely because Dijkstra keys do not depend on the target vertex.
///
/// The search borrows its dense state from a [`SearchScratch`], so starting
/// one costs `O(1)` instead of `O(|V|)`: the scratch is reset by epoch bump,
/// not by reallocation.  Create the scratch once per worker and reuse it for
/// every query.
#[derive(Debug)]
pub struct IncrementalDijkstra<'s> {
    source: NodeId,
    scratch: &'s mut SearchScratch,
    last_settled: Distance,
    settled_count: usize,
    pops: usize,
    relaxations: usize,
}

impl<'s> IncrementalDijkstra<'s> {
    /// Starts a new expansion around `source`, drawing state from
    /// `scratch` (which is reset first).
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a vertex of `graph`.
    pub fn new(graph: &SocialGraph, source: NodeId, scratch: &'s mut SearchScratch) -> Self {
        assert!(
            graph.contains(source),
            "source vertex {source} out of range"
        );
        scratch.begin(graph.node_count());
        scratch.set_tentative(source, 0.0, source);
        scratch.heap.push(HeapItem {
            key: 0.0,
            node: source,
        });
        IncrementalDijkstra {
            source,
            scratch,
            last_settled: 0.0,
            settled_count: 0,
            pops: 0,
            relaxations: 0,
        }
    }

    /// The source vertex of the expansion.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Settles and returns the next closest vertex, or `None` when every
    /// reachable vertex has been settled.
    pub fn next_settled(&mut self, graph: &SocialGraph) -> Option<(NodeId, Distance)> {
        while let Some(HeapItem { key, node }) = self.scratch.heap.pop() {
            self.pops += 1;
            if self.scratch.is_settled(node) {
                continue; // stale heap entry (lazy deletion)
            }
            self.scratch.mark_settled(node);
            self.settled_count += 1;
            self.last_settled = key;
            for edge in graph.neighbors(node) {
                self.relaxations += 1;
                let cand = key + edge.weight;
                if cand < self.scratch.tentative(edge.to) {
                    self.scratch.set_tentative(edge.to, cand, node);
                    self.scratch.heap.push(HeapItem {
                        key: cand,
                        node: edge.to,
                    });
                }
            }
            return Some((node, key));
        }
        None
    }

    /// Runs the expansion until `target` is settled and returns its exact
    /// distance (`f64::INFINITY` if unreachable).
    pub fn run_until_settled(&mut self, graph: &SocialGraph, target: NodeId) -> Distance {
        if self.is_settled(target) {
            return self.scratch.tentative(target);
        }
        while let Some((node, d)) = self.next_settled(graph) {
            if node == target {
                return d;
            }
        }
        f64::INFINITY
    }

    /// Exact distance of a vertex if it has already been settled.
    #[inline]
    pub fn settled_distance(&self, v: NodeId) -> Option<Distance> {
        if self.scratch.is_settled(v) {
            Some(self.scratch.tentative(v))
        } else {
            None
        }
    }

    /// Tentative (upper-bound) distance of a vertex; `INFINITY` if it has
    /// not been touched yet.
    #[inline]
    pub fn tentative_distance(&self, v: NodeId) -> Distance {
        self.scratch.tentative(v)
    }

    /// Returns `true` when `v` has been settled (its distance is exact).
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        self.scratch.is_settled(v)
    }

    /// Distance of the most recently settled vertex — a lower bound on the
    /// distance of every unsettled vertex (the `t_p` / `β` bound used by the
    /// algorithms).
    #[inline]
    pub fn frontier_bound(&self) -> Distance {
        self.last_settled
    }

    /// Returns `true` when the expansion has settled every vertex it can
    /// reach.
    pub fn exhausted(&self) -> bool {
        self.scratch.heap.is_empty()
    }

    /// Number of vertices settled so far.
    pub fn settled_count(&self) -> usize {
        self.settled_count
    }

    /// Number of heap pops performed (including stale entries).
    pub fn pops(&self) -> usize {
        self.pops
    }

    /// Number of edge relaxations attempted so far (one per neighbour edge
    /// of every settled vertex).  The expansion's run-time is dominated by
    /// these, which makes the counter a timing-free proxy for search effort.
    pub fn relaxations(&self) -> usize {
        self.relaxations
    }

    /// Parent of `v` in the shortest-path tree (only meaningful for settled
    /// vertices; the source is its own parent).
    pub fn parent(&self, v: NodeId) -> NodeId {
        self.scratch.parent(v)
    }

    /// Reconstructs the shortest path from the source to `v` (inclusive of
    /// both endpoints).  Returns `None` if `v` has not been settled.
    pub fn path_to(&self, v: NodeId) -> Option<Vec<NodeId>> {
        if !self.is_settled(v) {
            return None;
        }
        let mut path = vec![v];
        let mut cur = v;
        while cur != self.source {
            cur = self.scratch.parent(cur);
            path.push(cur);
        }
        path.reverse();
        Some(path)
    }

    /// The exact distances of every vertex settled so far, materialized as a
    /// dense vector (`INFINITY` for unsettled vertices).
    pub fn distances(&self, graph: &SocialGraph) -> Vec<Distance> {
        graph
            .nodes()
            .map(|v| {
                if self.scratch.is_settled(v) {
                    self.scratch.tentative(v)
                } else {
                    f64::INFINITY
                }
            })
            .collect()
    }
}

/// Computes the distances from `source` to every vertex (single-source
/// shortest paths).  Unreachable vertices get `f64::INFINITY`.
///
/// Allocates a fresh [`SearchScratch`] per call; use
/// [`dijkstra_all_with`] in loops that can reuse one.
pub fn dijkstra_all(graph: &SocialGraph, source: NodeId) -> Vec<Distance> {
    let mut scratch = SearchScratch::new();
    dijkstra_all_with(graph, source, &mut scratch)
}

/// [`dijkstra_all`] drawing state from a caller-provided scratch, for reuse
/// across many single-source computations (landmark construction, oracle
/// sweeps).
pub fn dijkstra_all_with(
    graph: &SocialGraph,
    source: NodeId,
    scratch: &mut SearchScratch,
) -> Vec<Distance> {
    let mut search = IncrementalDijkstra::new(graph, source, scratch);
    while search.next_settled(graph).is_some() {}
    search.distances(graph)
}

/// Computes the point-to-point distance between `source` and `target` with
/// plain Dijkstra, stopping as soon as the target is settled.
pub fn dijkstra_distance(graph: &SocialGraph, source: NodeId, target: NodeId) -> Distance {
    let mut scratch = SearchScratch::new();
    let mut search = IncrementalDijkstra::new(graph, source, &mut scratch);
    search.run_until_settled(graph, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// The small example graph of Figure 5 in the paper.
    fn example_graph() -> SocialGraph {
        // vq=0, v1..v11 = 1..11
        GraphBuilder::from_edges(
            12,
            vec![
                (0, 1, 1.0),
                (0, 2, 2.0),
                (0, 3, 1.0),
                (2, 4, 1.0),
                (3, 4, 2.0),
                (4, 5, 1.0),
                (4, 6, 2.0),
                (5, 7, 1.0),
                (6, 8, 1.0),
                (7, 9, 5.0),
                (8, 9, 3.0),
                (9, 10, 1.0),
                (10, 11, 2.0),
            ],
        )
        .unwrap()
    }

    #[test]
    fn distances_match_hand_computation() {
        let g = example_graph();
        let d = dijkstra_all(&g, 0);
        assert_eq!(d[0], 0.0);
        assert_eq!(d[1], 1.0);
        assert_eq!(d[2], 2.0);
        assert_eq!(d[3], 1.0);
        assert_eq!(d[4], 3.0);
        assert_eq!(d[5], 4.0);
        assert_eq!(d[6], 5.0);
        assert_eq!(d[7], 5.0);
        assert_eq!(d[8], 6.0);
        assert_eq!(d[9], 9.0);
        assert_eq!(d[10], 10.0);
        assert_eq!(d[11], 12.0);
    }

    #[test]
    fn settled_order_is_nondecreasing() {
        let g = example_graph();
        let mut scratch = SearchScratch::new();
        let mut search = IncrementalDijkstra::new(&g, 0, &mut scratch);
        let mut prev = 0.0;
        while let Some((_, d)) = search.next_settled(&g) {
            assert!(d >= prev);
            prev = d;
        }
        assert_eq!(search.settled_count(), 12);
        assert!(search.exhausted());
    }

    #[test]
    fn point_to_point_early_termination() {
        let g = example_graph();
        assert_eq!(dijkstra_distance(&g, 0, 5), 4.0);
        assert_eq!(dijkstra_distance(&g, 11, 0), 12.0);
        assert_eq!(dijkstra_distance(&g, 3, 3), 0.0);
    }

    #[test]
    fn unreachable_vertices_are_infinite() {
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 1.0)]).unwrap();
        let d = dijkstra_all(&g, 0);
        assert_eq!(d[1], 1.0);
        assert!(d[2].is_infinite());
        assert!(d[3].is_infinite());
        assert!(dijkstra_distance(&g, 0, 3).is_infinite());
    }

    #[test]
    fn resumable_expansion_can_be_interleaved() {
        let g = example_graph();
        let mut scratch = SearchScratch::new();
        let mut search = IncrementalDijkstra::new(&g, 0, &mut scratch);
        // Settle a few vertices, query the state, then continue.
        let first = search.next_settled(&g).unwrap();
        assert_eq!(first, (0, 0.0));
        let _ = search.next_settled(&g).unwrap();
        assert!(search.is_settled(0));
        assert!(!search.is_settled(11));
        assert!(search.tentative_distance(11).is_infinite());
        let d5 = search.run_until_settled(&g, 5);
        assert_eq!(d5, 4.0);
        // Frontier bound equals distance of last settled vertex.
        assert_eq!(search.frontier_bound(), 4.0);
        // Continue to the end without issues.
        let d11 = search.run_until_settled(&g, 11);
        assert_eq!(d11, 12.0);
    }

    #[test]
    fn path_reconstruction_follows_shortest_path() {
        let g = example_graph();
        let mut scratch = SearchScratch::new();
        let mut search = IncrementalDijkstra::new(&g, 0, &mut scratch);
        search.run_until_settled(&g, 9);
        let path = search.path_to(9).unwrap();
        assert_eq!(path.first(), Some(&0));
        assert_eq!(path.last(), Some(&9));
        // Path length equals the computed distance.
        let mut total = 0.0;
        for w in path.windows(2) {
            total += g.edge_weight(w[0], w[1]).unwrap();
        }
        assert_eq!(total, 9.0);
        assert!(search.path_to(11).is_none());
    }

    #[test]
    fn frontier_bound_lower_bounds_unsettled_vertices() {
        let g = example_graph();
        let full = dijkstra_all(&g, 0);
        let mut scratch = SearchScratch::new();
        let mut search = IncrementalDijkstra::new(&g, 0, &mut scratch);
        for _ in 0..6 {
            search.next_settled(&g);
        }
        let bound = search.frontier_bound();
        for v in g.nodes() {
            if !search.is_settled(v) {
                assert!(full[v as usize] >= bound);
            }
        }
    }

    #[test]
    fn scratch_reuse_across_searches_gives_identical_results() {
        let g = example_graph();
        let mut scratch = SearchScratch::new();
        // Run a partial search to deliberately dirty the scratch.
        {
            let mut partial = IncrementalDijkstra::new(&g, 11, &mut scratch);
            partial.run_until_settled(&g, 9);
        }
        // A full search over the dirty scratch must match a fresh one.
        let reused = dijkstra_all_with(&g, 0, &mut scratch);
        let fresh = dijkstra_all(&g, 0);
        assert_eq!(reused, fresh);
        assert!(scratch.resets() >= 2);
    }

    #[test]
    fn one_scratch_serves_many_sources_without_reallocating() {
        let g = example_graph();
        let mut scratch = SearchScratch::with_capacity(g.node_count());
        for source in g.nodes() {
            let with_scratch = dijkstra_all_with(&g, source, &mut scratch);
            assert_eq!(with_scratch, dijkstra_all(&g, source), "source {source}");
        }
        assert_eq!(scratch.capacity(), g.node_count());
    }

    #[test]
    fn compressed_layout_is_bit_identical_including_counters() {
        let g = example_graph();
        let c = g.with_layout(crate::CsrLayout::Compressed);
        for source in g.nodes() {
            let mut s1 = SearchScratch::new();
            let mut s2 = SearchScratch::new();
            let mut a = IncrementalDijkstra::new(&g, source, &mut s1);
            let mut b = IncrementalDijkstra::new(&c, source, &mut s2);
            loop {
                let (x, y) = (a.next_settled(&g), b.next_settled(&c));
                // Identical settle order, identical exact distances.
                assert_eq!(x, y, "source {source}");
                assert_eq!(a.relaxations(), b.relaxations(), "source {source}");
                assert_eq!(a.pops(), b.pops(), "source {source}");
                if x.is_none() {
                    break;
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_source_panics() {
        let g = example_graph();
        let mut scratch = SearchScratch::new();
        IncrementalDijkstra::new(&g, 99, &mut scratch);
    }
}
