use crate::dijkstra::HeapItem;
use crate::{Distance, EdgeWeight, NodeId, SocialGraph};
use std::collections::{BinaryHeap, HashMap};

/// Tuning parameters for Contraction Hierarchies preprocessing.
///
/// The witness search is limited in both hops and settled vertices: when it
/// is cut short without finding a witness the shortcut is added anyway, so
/// the limits trade preprocessing time and shortcut count against nothing —
/// query results stay exact.
#[derive(Debug, Clone, Copy)]
pub struct ChParams {
    /// Maximum number of vertices a witness search may settle.
    pub witness_settle_limit: usize,
    /// Maximum number of hops a witness path may have.
    pub witness_hop_limit: usize,
}

impl Default for ChParams {
    fn default() -> Self {
        ChParams {
            witness_settle_limit: 500,
            witness_hop_limit: 16,
        }
    }
}

/// Reusable working storage for the witness searches of the preprocessing
/// phase.  One instance backs every witness search of a whole
/// [`ContractionHierarchy::build`] run: clearing hash maps keeps their
/// capacity, so the per-pair searches (there are `O(degree²)` of them per
/// contracted vertex) stop allocating after the first few.
#[derive(Debug, Clone, Default)]
struct WitnessScratch {
    dist: HashMap<NodeId, (Distance, usize)>,
    settled: HashMap<NodeId, Distance>,
    heap: BinaryHeap<HeapItem>,
    neighbors: Vec<(NodeId, EdgeWeight)>,
}

/// Reusable working storage for [`ContractionHierarchy::distance_with`]:
/// the two upward-search result maps, the shared tentative-distance map and
/// the heap.  Clearing hash maps keeps their capacity, so a scratch that
/// has served one query serves the next without allocating.
#[derive(Debug, Clone, Default)]
pub struct ChQueryScratch {
    forward: HashMap<NodeId, Distance>,
    backward: HashMap<NodeId, Distance>,
    dist: HashMap<NodeId, Distance>,
    heap: BinaryHeap<HeapItem>,
}

/// A Contraction Hierarchies (CH) index over a [`SocialGraph`].
///
/// The SSRQ paper compares its incremental-Dijkstra-based methods against
/// variants (SFA-CH, SPA-CH, TSA-CH) whose social-distance module is the
/// state-of-the-art pre-computation technique CH.  The paper observes (and
/// our benchmarks reproduce) that CH is poorly suited to dense social
/// graphs: contraction of hub vertices creates many shortcuts, and the
/// per-pair query cannot share work across the many distance computations a
/// single SSRQ query performs.
///
/// Preprocessing contracts vertices in increasing importance (lazy
/// edge-difference heuristic), inserting shortcuts that preserve all
/// pairwise distances.  Queries run a bidirectional upward Dijkstra and are
/// exact.
#[derive(Debug, Clone)]
pub struct ContractionHierarchy {
    /// Contraction order: `rank[v]` is the position of `v` in the order.
    rank: Vec<u32>,
    /// Upward adjacency: edges (original and shortcuts) from each vertex to
    /// higher-ranked vertices only.
    up: Vec<Vec<(NodeId, EdgeWeight)>>,
    /// Number of shortcut edges added during preprocessing.
    shortcut_count: usize,
}

impl ContractionHierarchy {
    /// Builds the hierarchy (this is the expensive pre-processing step).
    pub fn build(graph: &SocialGraph, params: ChParams) -> Self {
        let n = graph.node_count();
        // Overlay adjacency, mutated as vertices are contracted.
        let mut adj: Vec<HashMap<NodeId, EdgeWeight>> = vec![HashMap::new(); n];
        for (u, v, w) in graph.undirected_edges() {
            let e = adj[u as usize].entry(v).or_insert(w);
            *e = e.min(w);
            let e = adj[v as usize].entry(u).or_insert(w);
            *e = e.min(w);
        }

        let mut contracted = vec![false; n];
        let mut deleted_neighbors = vec![0u32; n];
        let mut rank = vec![0u32; n];
        let mut all_edges: Vec<(NodeId, NodeId, EdgeWeight)> = graph.undirected_edges().collect();
        let mut shortcut_count = 0usize;

        // One scratch backs every witness search of the whole build; the
        // hash maps and heap retain their capacity between searches, so the
        // `O(degree²)` per-contraction witness probes stop allocating after
        // warm-up (the ROADMAP's scratch-reuse item).
        let mut scratch = WitnessScratch::default();

        // Lazy priority queue of (priority, node).
        let mut queue: BinaryHeap<HeapItem> = BinaryHeap::new();
        for v in 0..n as NodeId {
            let p = Self::priority(
                v,
                &adj,
                &contracted,
                &deleted_neighbors,
                &params,
                &mut scratch,
            );
            queue.push(HeapItem { key: p, node: v });
        }

        let mut next_rank = 0u32;
        while let Some(HeapItem { key, node }) = queue.pop() {
            if contracted[node as usize] {
                continue;
            }
            // Lazy update: recompute and re-insert if the priority became
            // stale (worse than the next candidate).
            let fresh = Self::priority(
                node,
                &adj,
                &contracted,
                &deleted_neighbors,
                &params,
                &mut scratch,
            );
            if let Some(next) = queue.peek() {
                if fresh > key + 1e-12 && fresh > next.key + 1e-12 {
                    queue.push(HeapItem { key: fresh, node });
                    continue;
                }
            }

            // Contract `node`: connect every pair of its remaining
            // neighbours whose shortest path runs through it.  Borrow the
            // scratch's neighbour buffer for the duration (same take/restore
            // pattern as `priority`, so `has_witness` can use the rest).
            let mut neighbors = std::mem::take(&mut scratch.neighbors);
            neighbors.clear();
            neighbors.extend(
                adj[node as usize]
                    .iter()
                    .filter(|(&u, _)| !contracted[u as usize])
                    .map(|(&u, &w)| (u, w)),
            );
            for i in 0..neighbors.len() {
                for j in (i + 1)..neighbors.len() {
                    let (u, wu) = neighbors[i];
                    let (w, ww) = neighbors[j];
                    let via = wu + ww;
                    if Self::has_witness(&adj, &contracted, node, u, w, via, &params, &mut scratch)
                    {
                        continue;
                    }
                    // Insert / improve the shortcut u—w.
                    let improved_u = {
                        let e = adj[u as usize].entry(w).or_insert(f64::INFINITY);
                        if via < *e {
                            *e = via;
                            true
                        } else {
                            false
                        }
                    };
                    if improved_u {
                        let e = adj[w as usize].entry(u).or_insert(f64::INFINITY);
                        *e = (*e).min(via);
                        all_edges.push((u, w, via));
                        shortcut_count += 1;
                    }
                }
            }
            for &(u, _) in &neighbors {
                deleted_neighbors[u as usize] += 1;
            }
            scratch.neighbors = neighbors;
            contracted[node as usize] = true;
            rank[node as usize] = next_rank;
            next_rank += 1;
        }

        // Build the upward adjacency from the full (original + shortcut)
        // edge set, keeping the minimum weight per ordered pair.
        let mut up: Vec<HashMap<NodeId, EdgeWeight>> = vec![HashMap::new(); n];
        for (u, v, w) in all_edges {
            let (lo, hi) = if rank[u as usize] < rank[v as usize] {
                (u, v)
            } else {
                (v, u)
            };
            let e = up[lo as usize].entry(hi).or_insert(w);
            *e = e.min(w);
        }
        let up = up
            .into_iter()
            .map(|m| {
                let mut v: Vec<(NodeId, EdgeWeight)> = m.into_iter().collect();
                v.sort_by_key(|&(to, _)| to);
                v
            })
            .collect();

        ContractionHierarchy {
            rank,
            up,
            shortcut_count,
        }
    }

    /// Builds the hierarchy with default parameters.
    pub fn new(graph: &SocialGraph) -> Self {
        Self::build(graph, ChParams::default())
    }

    /// Number of shortcut edges the preprocessing added.
    pub fn shortcut_count(&self) -> usize {
        self.shortcut_count
    }

    /// Contraction rank of a vertex (higher = more important).
    pub fn rank(&self, v: NodeId) -> u32 {
        self.rank[v as usize]
    }

    /// Number of vertices of the graph the hierarchy was built over.
    pub fn node_count(&self) -> usize {
        self.rank.len()
    }

    /// Approximate heap footprint of the hierarchy in bytes (rank table
    /// plus the upward adjacency, including shortcuts).
    ///
    /// A built hierarchy is immutable; share it across engines through an
    /// `Arc` (one build serves any number of concurrent queries) instead of
    /// re-running the expensive preprocessing per engine.
    pub fn approx_heap_bytes(&self) -> usize {
        self.rank.capacity() * std::mem::size_of::<u32>()
            + self.up.capacity() * std::mem::size_of::<Vec<(NodeId, EdgeWeight)>>()
            + self
                .up
                .iter()
                .map(|adj| adj.capacity() * std::mem::size_of::<(NodeId, EdgeWeight)>())
                .sum::<usize>()
    }

    /// Exact shortest-path distance between `s` and `t`
    /// (`f64::INFINITY` when disconnected).
    ///
    /// Allocates fresh search state per call; use
    /// [`ContractionHierarchy::distance_with`] in query loops that can
    /// reuse a [`ChQueryScratch`].
    pub fn distance(&self, s: NodeId, t: NodeId) -> Distance {
        let mut scratch = ChQueryScratch::default();
        self.distance_with(s, t, &mut scratch)
    }

    /// [`ContractionHierarchy::distance`] drawing its hash maps and heap
    /// from a caller-provided scratch, so repeated point-to-point queries
    /// (the `*-CH` SSRQ baselines issue hundreds per SSRQ query) reuse
    /// their allocations.
    pub fn distance_with(&self, s: NodeId, t: NodeId, scratch: &mut ChQueryScratch) -> Distance {
        if s == t {
            return 0.0;
        }
        let ChQueryScratch {
            forward,
            backward,
            dist,
            heap,
        } = scratch;
        self.upward_search_into(s, forward, dist, heap);
        self.upward_search_into(t, backward, dist, heap);
        let mut best = f64::INFINITY;
        // The meeting vertex of the two upward searches gives the distance.
        let (small, large) = if forward.len() <= backward.len() {
            (&*forward, &*backward)
        } else {
            (&*backward, &*forward)
        };
        for (&v, &df) in small {
            if let Some(&db) = large.get(&v) {
                if df + db < best {
                    best = df + db;
                }
            }
        }
        best
    }

    /// Dijkstra restricted to upward edges; fills `settled` with every
    /// settled vertex and its distance.  `dist` and `heap` are working
    /// storage, cleared on entry.
    fn upward_search_into(
        &self,
        source: NodeId,
        settled: &mut HashMap<NodeId, Distance>,
        dist: &mut HashMap<NodeId, Distance>,
        heap: &mut BinaryHeap<HeapItem>,
    ) {
        settled.clear();
        dist.clear();
        heap.clear();
        dist.insert(source, 0.0);
        heap.push(HeapItem {
            key: 0.0,
            node: source,
        });
        while let Some(HeapItem { key, node }) = heap.pop() {
            if settled.contains_key(&node) {
                continue;
            }
            settled.insert(node, key);
            for &(to, w) in &self.up[node as usize] {
                let cand = key + w;
                let better = dist.get(&to).map(|&d| cand < d).unwrap_or(true);
                if better && !settled.contains_key(&to) {
                    dist.insert(to, cand);
                    heap.push(HeapItem {
                        key: cand,
                        node: to,
                    });
                }
            }
        }
    }

    /// Limited Dijkstra in the overlay graph (skipping `skip` and contracted
    /// vertices) to decide whether a path from `u` to `w` of length at most
    /// `max_len` exists without going through `skip`.  All working storage
    /// comes from `scratch`, cleared on entry.
    #[allow(clippy::too_many_arguments)]
    fn has_witness(
        adj: &[HashMap<NodeId, EdgeWeight>],
        contracted: &[bool],
        skip: NodeId,
        u: NodeId,
        w: NodeId,
        max_len: f64,
        params: &ChParams,
        scratch: &mut WitnessScratch,
    ) -> bool {
        let WitnessScratch {
            dist,
            settled,
            heap,
            ..
        } = scratch;
        dist.clear();
        settled.clear();
        heap.clear();
        let mut settled_count = 0usize;
        dist.insert(u, (0.0, 0));
        heap.push(HeapItem { key: 0.0, node: u });
        while let Some(HeapItem { key, node }) = heap.pop() {
            if settled.contains_key(&node) {
                continue;
            }
            settled.insert(node, key);
            settled_count += 1;
            if node == w {
                return key <= max_len + 1e-12;
            }
            if key > max_len || settled_count >= params.witness_settle_limit {
                break;
            }
            let hops = dist.get(&node).map(|&(_, h)| h).unwrap_or(0);
            if hops >= params.witness_hop_limit {
                continue;
            }
            for (&to, &weight) in &adj[node as usize] {
                if to == skip || contracted[to as usize] {
                    continue;
                }
                let cand = key + weight;
                let better = dist.get(&to).map(|&(d, _)| cand < d).unwrap_or(true);
                if better && !settled.contains_key(&to) {
                    dist.insert(to, (cand, hops + 1));
                    heap.push(HeapItem {
                        key: cand,
                        node: to,
                    });
                }
            }
        }
        settled
            .get(&w)
            .map(|&d| d <= max_len + 1e-12)
            .unwrap_or(false)
    }

    /// Contraction priority of a vertex: edge difference plus the number of
    /// already-contracted neighbours.  Smaller = contracted earlier.
    ///
    /// Note: the value is used as a *min*-ordered key through [`HeapItem`]
    /// (which reverses the comparison), so the heap pops the least important
    /// vertex first.
    fn priority(
        v: NodeId,
        adj: &[HashMap<NodeId, EdgeWeight>],
        contracted: &[bool],
        deleted_neighbors: &[u32],
        params: &ChParams,
        scratch: &mut WitnessScratch,
    ) -> f64 {
        // Borrow the scratch's neighbour buffer for the duration of the
        // estimate (it cannot stay borrowed while `has_witness` uses the
        // rest of the scratch, so take it out and put it back).
        let mut neighbors = std::mem::take(&mut scratch.neighbors);
        neighbors.clear();
        neighbors.extend(
            adj[v as usize]
                .iter()
                .filter(|(&u, _)| !contracted[u as usize])
                .map(|(&u, &w)| (u, w)),
        );
        let degree = neighbors.len();
        if degree == 0 {
            scratch.neighbors = neighbors;
            return -1000.0;
        }
        // Estimate the number of shortcuts a contraction would add.  For
        // efficiency the estimate uses a cheap witness search only for small
        // degrees and assumes the worst case otherwise.
        let mut shortcuts = 0usize;
        if degree <= 8 {
            for i in 0..degree {
                for j in (i + 1)..degree {
                    let (u, wu) = neighbors[i];
                    let (w, ww) = neighbors[j];
                    let mut cheap = *params;
                    cheap.witness_settle_limit = cheap.witness_settle_limit.min(50);
                    if !Self::has_witness(adj, contracted, v, u, w, wu + ww, &cheap, scratch) {
                        shortcuts += 1;
                    }
                }
            }
        } else {
            shortcuts = degree * (degree - 1) / 2;
        }
        scratch.neighbors = neighbors;
        (shortcuts as f64 - degree as f64) + 2.0 * deleted_neighbors[v as usize] as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra_all, GraphBuilder};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_graph(n: usize, extra_edges: usize, seed: u64) -> SocialGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        for v in 1..n {
            let u = rng.gen_range(0..v);
            b.add_edge(u as NodeId, v as NodeId, rng.gen_range(0.1..2.0))
                .unwrap();
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u as NodeId, v as NodeId, rng.gen_range(0.1..2.0))
                    .unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn distances_match_dijkstra_on_path_graph() {
        let g = GraphBuilder::from_edges(
            8,
            (0..7).map(|i| (i as NodeId, i as NodeId + 1, (i + 1) as f64)),
        )
        .unwrap();
        let ch = ContractionHierarchy::new(&g);
        for s in g.nodes() {
            let truth = dijkstra_all(&g, s);
            for t in g.nodes() {
                assert!(
                    (ch.distance(s, t) - truth[t as usize]).abs() < 1e-9,
                    "d({s},{t})"
                );
            }
        }
    }

    #[test]
    fn distances_match_dijkstra_on_random_graphs() {
        for seed in 0..3 {
            let g = random_graph(70, 140, seed);
            let ch = ContractionHierarchy::new(&g);
            let mut rng = StdRng::seed_from_u64(seed + 50);
            for _ in 0..40 {
                let s = rng.gen_range(0..70) as NodeId;
                let t = rng.gen_range(0..70) as NodeId;
                let truth = dijkstra_all(&g, s)[t as usize];
                let got = ch.distance(s, t);
                assert!(
                    (got - truth).abs() < 1e-9,
                    "seed {seed}: CH d({s},{t}) = {got}, Dijkstra {truth}"
                );
            }
        }
    }

    #[test]
    fn handles_disconnected_components() {
        let g = GraphBuilder::from_edges(6, vec![(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0)]).unwrap();
        let ch = ContractionHierarchy::new(&g);
        assert_eq!(ch.distance(0, 2), 3.0);
        assert_eq!(ch.distance(3, 4), 1.0);
        assert!(ch.distance(0, 4).is_infinite());
        assert!(ch.distance(5, 0).is_infinite());
        assert_eq!(ch.distance(5, 5), 0.0);
    }

    #[test]
    fn ranks_are_a_permutation() {
        let g = random_graph(40, 60, 9);
        let ch = ContractionHierarchy::new(&g);
        let mut ranks: Vec<u32> = g.nodes().map(|v| ch.rank(v)).collect();
        ranks.sort_unstable();
        let expected: Vec<u32> = (0..40).collect();
        assert_eq!(ranks, expected);
    }

    #[test]
    fn star_graph_contracts_leaves_first() {
        // Hub 0 with 10 leaves; the hub should be contracted last (highest
        // rank) because contracting it early would add many shortcuts.
        let g = GraphBuilder::from_edges(11, (1..11).map(|i| (0, i as NodeId, 1.0))).unwrap();
        let ch = ContractionHierarchy::new(&g);
        assert_eq!(ch.rank(0), 10);
        // Leaf-to-leaf distances go through the hub.
        assert_eq!(ch.distance(1, 2), 2.0);
        assert_eq!(ch.distance(5, 9), 2.0);
    }

    #[test]
    fn shortcut_count_is_reported() {
        let g = random_graph(50, 120, 3);
        let ch = ContractionHierarchy::new(&g);
        // A connected random graph of this density needs some shortcuts;
        // mostly we check the accessor is wired up and finite.
        assert!(ch.shortcut_count() < 50 * 50);
    }
}
