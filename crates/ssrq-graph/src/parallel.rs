//! Chunk-parallel single-source shortest paths.
//!
//! [`dijkstra_all_parallel`] computes the same dense distance vector as
//! [`dijkstra_all`] with a double-buffered, frontier-gated Jacobi
//! relaxation whose per-round recomputation is chunked across
//! `std::thread::scope` workers.  It exists for the construction-time
//! sweeps that dominate large dataset builds (the double-sweep
//! pseudo-diameter normalization constant, see [`pseudo_diameter`]), where
//! a full `O(|V|)` vector is wanted anyway and the heap of a sequential
//! Dijkstra serializes everything.
//!
//! # Bit-identical to the sequential sweep
//!
//! The parallel result is not merely "close": it is **bit-identical** to
//! [`dijkstra_all`], which the norm-regression tests of `ssrq-data` rely
//! on.  The argument, with `fl` the rounding of one `f64` addition:
//!
//! * Both algorithms only ever produce vertex values of the form
//!   `fl(fl(...) + w)` — a rounded prefix sum along some concrete path —
//!   and both take plain `min`s over such candidates, which is
//!   order-independent (comparisons do not round).
//! * For non-negative weights `fl(a + w) ≥ a`, so Dijkstra's float
//!   settle order is non-decreasing and its final vector `D` satisfies the
//!   fixpoint equations `D[v] = min(D[v], min_u fl(D[u] + w(u,v)))`.
//! * The Jacobi iteration started from `(0 at source, ∞ elsewhere)`
//!   decreases monotonically, offers every tree-path candidate of `D`
//!   within hop-count rounds (so it converges to a value `≤ D`), and every
//!   value it produces is a rounded path sum, which `D` lower-bounds
//!   (each Dijkstra entry is the min over *all* rounded path sums).
//!   Hence the fixpoints coincide, `fl` ties and all.
//!
//! Termination needs at most `|V| − 1` rounds: extending a path never
//! decreases its rounded sum, so only simple paths matter.

use crate::{dijkstra_all, Distance, NodeId, SocialGraph};

/// Single-source shortest paths over `threads` workers, bit-identical to
/// [`dijkstra_all`] (see the module docs for why); `threads <= 1` falls
/// back to the sequential sweep.
///
/// Each round recomputes only vertices with an *active* neighbour (one
/// whose distance changed in the previous round), so the total work is
/// proportional to the frontier the relaxation actually touches rather
/// than `rounds × |E|`.
///
/// # Panics
///
/// Panics if `source` is not a vertex of `graph`.
pub fn dijkstra_all_parallel(graph: &SocialGraph, source: NodeId, threads: usize) -> Vec<Distance> {
    assert!(
        graph.contains(source),
        "source vertex {source} out of range"
    );
    let n = graph.node_count();
    if threads <= 1 || n <= 1 {
        return dijkstra_all(graph, source);
    }
    let threads = threads.min(n);
    let chunk = n.div_ceil(threads);
    let mut dist = vec![f64::INFINITY; n];
    dist[source as usize] = 0.0;
    let mut next = dist.clone();
    let mut active = vec![false; n];
    active[source as usize] = true;
    let mut next_active = vec![false; n];
    // `|V| - 1` rounds always suffice (simple-path argument above); the
    // loop exits earlier the moment a round improves nothing.
    for _ in 0..n {
        let dist_ref: &[f64] = &dist;
        let active_ref: &[bool] = &active;
        let changed = std::thread::scope(|scope| {
            let workers: Vec<_> = next
                .chunks_mut(chunk)
                .zip(next_active.chunks_mut(chunk))
                .enumerate()
                .map(|(idx, (next_chunk, flag_chunk))| {
                    scope.spawn(move || {
                        let base = idx * chunk;
                        let mut changed = false;
                        for (off, (slot, flag)) in
                            next_chunk.iter_mut().zip(flag_chunk.iter_mut()).enumerate()
                        {
                            let v = base + off;
                            let mut best = dist_ref[v];
                            // A candidate through an *inactive* neighbour was
                            // already offered (and rejected) in the round after
                            // that neighbour last changed, so scanning active
                            // neighbours preserves the fixpoint.
                            for edge in graph.neighbors(v as NodeId) {
                                if active_ref[edge.to as usize] {
                                    let cand = dist_ref[edge.to as usize] + edge.weight;
                                    if cand < best {
                                        best = cand;
                                    }
                                }
                            }
                            let improved = best < dist_ref[v];
                            *slot = best;
                            *flag = improved;
                            changed |= improved;
                        }
                        changed
                    })
                })
                .collect();
            workers.into_iter().fold(false, |any, w| {
                w.join().expect("sssp worker panicked") | any
            })
        });
        std::mem::swap(&mut dist, &mut next);
        std::mem::swap(&mut active, &mut next_active);
        if !changed {
            break;
        }
    }
    dist
}

/// Estimates the weighted diameter of the graph with the standard double
/// sweep: run single-source shortest paths from an arbitrary vertex of
/// positive degree, take the farthest reachable vertex, sweep again from
/// there and return the largest finite distance found.  Returns `1.0` for
/// graphs where the sweep finds no positive distance (empty or edgeless).
///
/// Both sweeps run through [`dijkstra_all_parallel`], so the estimate is
/// **independent of `threads`** — `pseudo_diameter(g, 8)` is bit-identical
/// to `pseudo_diameter(g, 1)` (the sequential double sweep `ssrq-core`
/// normalization constants were historically computed with).
pub fn pseudo_diameter(graph: &SocialGraph, threads: usize) -> f64 {
    if graph.node_count() == 0 {
        return 1.0;
    }
    // Prefer a vertex with at least one edge as the sweep start.
    let start = graph
        .nodes()
        .find(|&v| graph.degree(v) > 0)
        .unwrap_or(0 as NodeId);
    let first = dijkstra_all_parallel(graph, start, threads);
    let (far, far_dist) = farthest_finite(&first);
    if far_dist <= 0.0 {
        return 1.0;
    }
    let second = dijkstra_all_parallel(graph, far, threads);
    let (_, diameter) = farthest_finite(&second);
    if diameter > 0.0 {
        diameter
    } else {
        1.0
    }
}

/// The finite-distance vertex farthest from the sweep source (ties broken
/// towards the lowest id, deterministically).
fn farthest_finite(dist: &[f64]) -> (NodeId, f64) {
    let mut best = (0 as NodeId, 0.0);
    for (v, &d) in dist.iter().enumerate() {
        if d.is_finite() && d > best.1 {
            best = (v as NodeId, d);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn messy_graph(n: usize, seed: u64) -> SocialGraph {
        // Deterministic pseudo-random graph with irrational-ish weights so
        // float rounding actually matters.
        let mut state = seed | 1;
        let mut rand = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut edges = Vec::new();
        for v in 1..n as u32 {
            // Connect to a previous vertex to keep most of the graph joined.
            let to = rand() % v as u64;
            let w = 0.1 + (rand() % 1000) as f64 / 297.0;
            edges.push((v, to as u32, w));
            if rand() % 3 == 0 {
                let extra = rand() % n as u64;
                if extra as u32 != v {
                    let w2 = 0.05 + (rand() % 777) as f64 / 131.0;
                    edges.push((v, extra as u32, w2));
                }
            }
        }
        GraphBuilder::from_edges(n, edges).unwrap()
    }

    #[test]
    fn parallel_sweep_is_bit_identical_to_dijkstra() {
        for seed in [1u64, 7, 42] {
            let g = messy_graph(200, seed);
            for source in [0u32, 3, 199] {
                let sequential = dijkstra_all(&g, source);
                for threads in [2usize, 3, 4, 8] {
                    let parallel = dijkstra_all_parallel(&g, source, threads);
                    // Bit-level equality, not approximate equality.
                    let seq_bits: Vec<u64> = sequential.iter().map(|d| d.to_bits()).collect();
                    let par_bits: Vec<u64> = parallel.iter().map(|d| d.to_bits()).collect();
                    assert_eq!(
                        seq_bits, par_bits,
                        "seed {seed} source {source} threads {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_sweep_handles_disconnected_graphs() {
        let g = GraphBuilder::from_edges(6, vec![(0, 1, 2.5), (1, 2, 0.75), (3, 4, 1.0)]).unwrap();
        let sequential = dijkstra_all(&g, 0);
        let parallel = dijkstra_all_parallel(&g, 0, 4);
        assert_eq!(sequential, parallel);
        assert!(parallel[3].is_infinite());
        assert!(parallel[5].is_infinite());
    }

    #[test]
    fn single_thread_falls_back_to_sequential() {
        let g = messy_graph(50, 9);
        assert_eq!(dijkstra_all_parallel(&g, 0, 1), dijkstra_all(&g, 0));
        assert_eq!(dijkstra_all_parallel(&g, 0, 0), dijkstra_all(&g, 0));
    }

    #[test]
    fn pseudo_diameter_is_thread_count_independent() {
        for seed in [3u64, 11] {
            let g = messy_graph(300, seed);
            let reference = pseudo_diameter(&g, 1);
            assert!(reference.is_finite() && reference > 0.0);
            for threads in [2usize, 4, 7] {
                assert_eq!(
                    pseudo_diameter(&g, threads).to_bits(),
                    reference.to_bits(),
                    "seed {seed} threads {threads}"
                );
            }
        }
    }

    #[test]
    fn pseudo_diameter_degenerate_graphs() {
        let edgeless = GraphBuilder::from_edges(4, Vec::<(u32, u32, f64)>::new()).unwrap();
        assert_eq!(pseudo_diameter(&edgeless, 4), 1.0);
        let line =
            GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)]).unwrap();
        assert_eq!(pseudo_diameter(&line, 4), 3.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_source_panics_like_dijkstra() {
        let g = messy_graph(10, 5);
        dijkstra_all_parallel(&g, 99, 4);
    }
}
