use crate::{EdgeWeight, GraphError};

/// Identifier of a vertex in the social graph.
///
/// Vertex `i` corresponds to user `u_i` of the SSRQ problem setting; the
/// mapping between spatial items and graph vertices is by identity of the
/// numeric id.
pub type NodeId = u32;

/// A directed half-edge stored in the CSR adjacency: the neighbour vertex
/// and the edge weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Neighbour vertex.
    pub to: NodeId,
    /// Edge weight (strictly positive; smaller = stronger friendship).
    pub weight: EdgeWeight,
}

/// A weighted, undirected social graph in CSR (compressed sparse row) form.
///
/// The representation is immutable after construction (social-network
/// topology changes far less frequently than user locations — §5.1), keeps
/// both directions of every undirected edge, and stores adjacency in two
/// flat vectors for cache-friendly traversal:
///
/// * `offsets[v] .. offsets[v + 1]` — the slice of `edges` holding the
///   neighbours of `v`.
///
/// Use [`GraphBuilder`](crate::GraphBuilder) to construct one.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    offsets: Vec<u32>,
    edges: Vec<Edge>,
    /// Number of undirected edges (half of the stored half-edges).
    undirected_edges: usize,
}

impl SocialGraph {
    pub(crate) fn from_csr(offsets: Vec<u32>, edges: Vec<Edge>, undirected_edges: usize) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, edges.len());
        SocialGraph {
            offsets,
            edges,
            undirected_edges,
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.undirected_edges
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Iterates over all vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }

    /// Neighbours of `v` together with edge weights.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; use [`SocialGraph::contains`] to guard
    /// untrusted input.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> &[Edge] {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        &self.edges[start..end]
    }

    /// Degree (number of incident edges) of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        self.neighbors(v).len()
    }

    /// Maximum vertex degree in the graph; 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average vertex degree.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.undirected_edges as f64 / self.node_count() as f64
    }

    /// Returns `true` when `v` is a valid vertex id.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        (v as usize) < self.node_count()
    }

    /// Weight of the edge between `u` and `v`, if one exists.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<EdgeWeight> {
        if !self.contains(u) || !self.contains(v) {
            return None;
        }
        self.neighbors(u)
            .iter()
            .find(|e| e.to == v)
            .map(|e| e.weight)
    }

    /// Validates that a vertex id is in range.
    pub fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if self.contains(v) {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(v))
        }
    }

    /// Total weight of all undirected edges.
    pub fn total_edge_weight(&self) -> f64 {
        self.edges.iter().map(|e| e.weight).sum::<f64>() / 2.0
    }

    /// Approximate heap footprint of the CSR representation in bytes
    /// (offsets plus both directions of every undirected edge).
    ///
    /// This is the quantity a sharded deployment shares: N shards over one
    /// `Arc`-held graph pay these bytes once, not N times.  The estimate is
    /// capacity-based and ignores allocator overhead.
    pub fn approx_heap_bytes(&self) -> usize {
        self.offsets.capacity() * std::mem::size_of::<u32>()
            + self.edges.capacity() * std::mem::size_of::<Edge>()
    }

    /// Iterates over every undirected edge exactly once as `(u, v, weight)`
    /// with `u < v` (self-loops are reported once).
    pub fn undirected_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeWeight)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .iter()
                .filter(move |e| u <= e.to)
                .map(move |e| (u, e.to, e.weight))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> SocialGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 2.0).unwrap();
        b.add_edge(0, 2, 4.0).unwrap();
        b.build()
    }

    #[test]
    fn csr_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.nodes().count(), 3);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 0), Some(1.0));
        assert_eq!(g.edge_weight(0, 2), Some(4.0));
        assert_eq!(g.edge_weight(2, 2), None);
    }

    #[test]
    fn degree_statistics() {
        let g = triangle();
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn check_node_detects_out_of_range() {
        let g = triangle();
        assert!(g.check_node(2).is_ok());
        assert_eq!(g.check_node(3), Err(GraphError::UnknownNode(3)));
        assert_eq!(g.edge_weight(0, 99), None);
    }

    #[test]
    fn undirected_edge_iteration_visits_each_edge_once() {
        let g = triangle();
        let mut edges: Vec<_> = g.undirected_edges().collect();
        edges.sort_by_key(|e| (e.0, e.1));
        assert_eq!(edges, vec![(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0)]);
        assert!((g.total_edge_weight() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let b = GraphBuilder::new(4);
        let g = b.build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }
}
