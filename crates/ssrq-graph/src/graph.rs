use crate::{EdgeWeight, GraphError};

/// Identifier of a vertex in the social graph.
///
/// Vertex `i` corresponds to user `u_i` of the SSRQ problem setting; the
/// mapping between spatial items and graph vertices is by identity of the
/// numeric id.
pub type NodeId = u32;

/// A directed half-edge stored in the CSR adjacency: the neighbour vertex
/// and the edge weight.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Edge {
    /// Neighbour vertex.
    pub to: NodeId,
    /// Edge weight (strictly positive; smaller = stronger friendship).
    pub weight: EdgeWeight,
}

/// Physical storage layout of the CSR adjacency, selectable at build time
/// (see [`crate::GraphBuilder::build_with_layout`] and
/// [`SocialGraph::with_layout`]).
///
/// Both layouts expose the same iteration order and bit-identical weights,
/// so every algorithm (Dijkstra, A*, CH) produces byte-for-byte identical
/// results — including relaxation counters — regardless of layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CsrLayout {
    /// One 16-byte [`Edge`] per half-edge: fastest iteration, largest
    /// footprint.
    #[default]
    Standard,
    /// Delta/varint-compressed neighbour ids (lists are sorted ascending, so
    /// consecutive gaps are small) plus a weight store that uses an
    /// exact-`f64` dictionary when the graph has few distinct weights
    /// (degree-product weights repeat heavily) and falls back to one inline
    /// `f64` per half-edge otherwise.  No quantisation anywhere: decoded
    /// edges are bit-identical to the standard layout.
    Compressed,
}

/// Half-edge weights of the compressed layout.
#[derive(Debug, Clone)]
enum WeightStore {
    /// One exact `f64` per half-edge, in adjacency order.
    Inline(Vec<EdgeWeight>),
    /// Per-half-edge `u16` index into a dictionary of exact `f64` values;
    /// chosen when the graph has at most `u16::MAX + 1` distinct weights.
    Dict {
        indices: Vec<u16>,
        values: Vec<EdgeWeight>,
    },
    /// Per-half-edge `u32` index into the dictionary; the middle tier for
    /// graphs whose distinct-weight count overflows `u16` but still repeats
    /// enough for 4-byte indices to beat 8-byte inline values (degree-product
    /// weights on million-user graphs land here).
    DictWide {
        indices: Vec<u32>,
        values: Vec<EdgeWeight>,
    },
}

impl WeightStore {
    #[inline]
    fn get(&self, half_edge: usize) -> EdgeWeight {
        match self {
            WeightStore::Inline(w) => w[half_edge],
            WeightStore::Dict { indices, values } => values[indices[half_edge] as usize],
            WeightStore::DictWide { indices, values } => values[indices[half_edge] as usize],
        }
    }

    fn heap_bytes(&self) -> usize {
        match self {
            WeightStore::Inline(w) => w.capacity() * std::mem::size_of::<EdgeWeight>(),
            WeightStore::Dict { indices, values } => {
                indices.capacity() * std::mem::size_of::<u16>()
                    + values.capacity() * std::mem::size_of::<EdgeWeight>()
            }
            WeightStore::DictWide { indices, values } => {
                indices.capacity() * std::mem::size_of::<u32>()
                    + values.capacity() * std::mem::size_of::<EdgeWeight>()
            }
        }
    }
}

/// The adjacency payload behind the shared `offsets` array.
#[derive(Debug, Clone)]
enum EdgeStore {
    Standard(Vec<Edge>),
    Compressed {
        /// Concatenated LEB128 varint streams: for each vertex, the first
        /// value is its smallest neighbour id, each following value the gap
        /// to the previous one (neighbour lists are strictly ascending).
        ids: Vec<u8>,
        /// Byte offset of each vertex's id stream (`n + 1` entries).
        id_offsets: Vec<u32>,
        weights: WeightStore,
    },
}

/// A weighted, undirected social graph in CSR (compressed sparse row) form.
///
/// The representation is immutable after construction (social-network
/// topology changes far less frequently than user locations — §5.1), keeps
/// both directions of every undirected edge, and stores adjacency behind a
/// flat `offsets` array for cache-friendly traversal.  Two physical layouts
/// are available (see [`CsrLayout`]); both decode to bit-identical edges in
/// identical order.
///
/// Use [`GraphBuilder`](crate::GraphBuilder) to construct one.
#[derive(Debug, Clone)]
pub struct SocialGraph {
    offsets: Vec<u32>,
    store: EdgeStore,
    /// Number of undirected edges (half of the stored half-edges).
    undirected_edges: usize,
}

impl SocialGraph {
    pub(crate) fn from_csr(offsets: Vec<u32>, edges: Vec<Edge>, undirected_edges: usize) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, edges.len());
        SocialGraph {
            offsets,
            store: EdgeStore::Standard(edges),
            undirected_edges,
        }
    }

    /// The physical layout of this graph's adjacency.
    pub fn layout(&self) -> CsrLayout {
        match self.store {
            EdgeStore::Standard(_) => CsrLayout::Standard,
            EdgeStore::Compressed { .. } => CsrLayout::Compressed,
        }
    }

    /// Returns a graph with identical topology and bit-identical weights in
    /// the requested layout (a cheap clone of the shared `offsets` plus a
    /// re-encode of the adjacency payload).
    pub fn with_layout(&self, layout: CsrLayout) -> SocialGraph {
        if self.layout() == layout {
            return self.clone();
        }
        match layout {
            CsrLayout::Standard => {
                let edges: Vec<Edge> = self.nodes().flat_map(|v| self.neighbors(v)).collect();
                SocialGraph {
                    offsets: self.offsets.clone(),
                    store: EdgeStore::Standard(edges),
                    undirected_edges: self.undirected_edges,
                }
            }
            CsrLayout::Compressed => {
                let half_edges = *self.offsets.last().unwrap() as usize;
                let mut ids = Vec::new();
                let mut id_offsets = Vec::with_capacity(self.offsets.len());
                let mut weights = Vec::with_capacity(half_edges);
                id_offsets.push(0u32);
                for v in self.nodes() {
                    let mut prev = 0u32;
                    for edge in self.neighbors(v) {
                        encode_varint(edge.to - prev, &mut ids);
                        prev = edge.to;
                        weights.push(edge.weight);
                    }
                    assert!(
                        ids.len() <= u32::MAX as usize,
                        "compressed id stream exceeds u32 offsets"
                    );
                    id_offsets.push(ids.len() as u32);
                }
                ids.shrink_to_fit();
                SocialGraph {
                    offsets: self.offsets.clone(),
                    store: EdgeStore::Compressed {
                        ids,
                        id_offsets,
                        weights: build_weight_store(weights),
                    },
                    undirected_edges: self.undirected_edges,
                }
            }
        }
    }

    /// Number of vertices.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.undirected_edges
    }

    /// Returns `true` when the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.node_count() == 0
    }

    /// Iterates over all vertex ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        0..self.node_count() as NodeId
    }

    /// Neighbours of `v` together with edge weights, in ascending order of
    /// neighbour id (identical for every layout).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range; use [`SocialGraph::contains`] to guard
    /// untrusted input.
    #[inline]
    pub fn neighbors(&self, v: NodeId) -> Neighbors<'_> {
        let start = self.offsets[v as usize] as usize;
        let end = self.offsets[v as usize + 1] as usize;
        let inner = match &self.store {
            EdgeStore::Standard(edges) => NeighborsInner::Slice(edges[start..end].iter()),
            EdgeStore::Compressed {
                ids,
                id_offsets,
                weights,
            } => NeighborsInner::Varint {
                bytes: &ids[id_offsets[v as usize] as usize..id_offsets[v as usize + 1] as usize],
                pos: 0,
                prev: 0,
                weights,
                half_edge: start,
                remaining: end - start,
            },
        };
        Neighbors { inner }
    }

    /// Degree (number of incident edges) of `v`.
    #[inline]
    pub fn degree(&self, v: NodeId) -> usize {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as usize
    }

    /// Maximum vertex degree in the graph; 0 for an empty graph.
    pub fn max_degree(&self) -> usize {
        self.nodes().map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Average vertex degree.
    pub fn average_degree(&self) -> f64 {
        if self.node_count() == 0 {
            return 0.0;
        }
        2.0 * self.undirected_edges as f64 / self.node_count() as f64
    }

    /// Returns `true` when `v` is a valid vertex id.
    #[inline]
    pub fn contains(&self, v: NodeId) -> bool {
        (v as usize) < self.node_count()
    }

    /// Weight of the edge between `u` and `v`, if one exists.
    pub fn edge_weight(&self, u: NodeId, v: NodeId) -> Option<EdgeWeight> {
        if !self.contains(u) || !self.contains(v) {
            return None;
        }
        self.neighbors(u).find(|e| e.to == v).map(|e| e.weight)
    }

    /// Validates that a vertex id is in range.
    pub fn check_node(&self, v: NodeId) -> Result<(), GraphError> {
        if self.contains(v) {
            Ok(())
        } else {
            Err(GraphError::UnknownNode(v))
        }
    }

    /// Total weight of all undirected edges.
    pub fn total_edge_weight(&self) -> f64 {
        self.nodes()
            .flat_map(|v| self.neighbors(v))
            .map(|e| e.weight)
            .sum::<f64>()
            / 2.0
    }

    /// Approximate heap footprint of the CSR representation in bytes
    /// (offsets plus the layout-dependent adjacency payload).
    ///
    /// This is the quantity a sharded deployment shares: N shards over one
    /// `Arc`-held graph pay these bytes once, not N times.  The estimate is
    /// capacity-based and ignores allocator overhead.
    pub fn approx_heap_bytes(&self) -> usize {
        let payload = match &self.store {
            EdgeStore::Standard(edges) => edges.capacity() * std::mem::size_of::<Edge>(),
            EdgeStore::Compressed {
                ids,
                id_offsets,
                weights,
            } => {
                ids.capacity()
                    + id_offsets.capacity() * std::mem::size_of::<u32>()
                    + weights.heap_bytes()
            }
        };
        self.offsets.capacity() * std::mem::size_of::<u32>() + payload
    }

    /// Iterates over every undirected edge exactly once as `(u, v, weight)`
    /// with `u < v` (self-loops are reported once).
    pub fn undirected_edges(&self) -> impl Iterator<Item = (NodeId, NodeId, EdgeWeight)> + '_ {
        self.nodes().flat_map(move |u| {
            self.neighbors(u)
                .filter(move |e| u <= e.to)
                .map(move |e| (u, e.to, e.weight))
        })
    }
}

/// Iterator over the neighbours of one vertex (see
/// [`SocialGraph::neighbors`]); yields [`Edge`]s by value in ascending order
/// of neighbour id under every layout.
#[derive(Debug, Clone)]
pub struct Neighbors<'a> {
    inner: NeighborsInner<'a>,
}

#[derive(Debug, Clone)]
enum NeighborsInner<'a> {
    Slice(std::slice::Iter<'a, Edge>),
    Varint {
        bytes: &'a [u8],
        pos: usize,
        prev: u32,
        weights: &'a WeightStore,
        half_edge: usize,
        remaining: usize,
    },
}

impl Iterator for Neighbors<'_> {
    type Item = Edge;

    #[inline]
    fn next(&mut self) -> Option<Edge> {
        match &mut self.inner {
            NeighborsInner::Slice(it) => it.next().copied(),
            NeighborsInner::Varint {
                bytes,
                pos,
                prev,
                weights,
                half_edge,
                remaining,
            } => {
                if *remaining == 0 {
                    return None;
                }
                let (delta, next_pos) = decode_varint(bytes, *pos);
                *pos = next_pos;
                let to = *prev + delta;
                *prev = to;
                let weight = weights.get(*half_edge);
                *half_edge += 1;
                *remaining -= 1;
                Some(Edge { to, weight })
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for Neighbors<'_> {
    fn len(&self) -> usize {
        match &self.inner {
            NeighborsInner::Slice(it) => it.len(),
            NeighborsInner::Varint { remaining, .. } => *remaining,
        }
    }
}

/// Chooses the weight store for a compressed graph: an exact-`f64`
/// dictionary with `u16` indices when the distinct-weight count fits, `u32`
/// indices when it overflows `u16` but the dictionary still beats inline
/// storage, and inline `f64`s otherwise.  Whichever candidate is smallest
/// (ties favour inline) wins; all of them decode bit-identically.
fn build_weight_store(weights: Vec<EdgeWeight>) -> WeightStore {
    let mut distinct: Vec<u64> = weights.iter().map(|w| w.to_bits()).collect();
    distinct.sort_unstable();
    distinct.dedup();
    let value_bytes = distinct.len() * std::mem::size_of::<f64>();
    let dict16_bytes = weights.len() * std::mem::size_of::<u16>() + value_bytes;
    let dict32_bytes = weights.len() * std::mem::size_of::<u32>() + value_bytes;
    let inline_bytes = weights.len() * std::mem::size_of::<f64>();
    let values: Vec<EdgeWeight> = distinct.iter().map(|&b| f64::from_bits(b)).collect();
    let index_of = |w: &EdgeWeight| {
        distinct
            .binary_search(&w.to_bits())
            .expect("every weight is in the dictionary")
    };
    if distinct.len() <= u16::MAX as usize + 1 && dict16_bytes < inline_bytes {
        WeightStore::Dict {
            indices: weights.iter().map(|w| index_of(w) as u16).collect(),
            values,
        }
    } else if distinct.len() <= u32::MAX as usize + 1 && dict32_bytes < inline_bytes {
        WeightStore::DictWide {
            indices: weights.iter().map(|w| index_of(w) as u32).collect(),
            values,
        }
    } else {
        WeightStore::Inline(weights)
    }
}

/// LEB128 varint encoding of a `u32`.
fn encode_varint(mut x: u32, out: &mut Vec<u8>) {
    loop {
        let byte = (x & 0x7f) as u8;
        x >>= 7;
        if x == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Decodes one LEB128 varint starting at `pos`; returns the value and the
/// position of the next varint.
#[inline]
fn decode_varint(bytes: &[u8], mut pos: usize) -> (u32, usize) {
    let mut x = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = bytes[pos];
        pos += 1;
        x |= u32::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return (x, pos);
        }
        shift += 7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle() -> SocialGraph {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1, 1.0).unwrap();
        b.add_edge(1, 2, 2.0).unwrap();
        b.add_edge(0, 2, 4.0).unwrap();
        b.build()
    }

    #[test]
    fn csr_counts() {
        let g = triangle();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert!(!g.is_empty());
        assert_eq!(g.nodes().count(), 3);
    }

    #[test]
    fn neighbors_are_symmetric() {
        let g = triangle();
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
        assert_eq!(g.edge_weight(0, 1), Some(1.0));
        assert_eq!(g.edge_weight(1, 0), Some(1.0));
        assert_eq!(g.edge_weight(0, 2), Some(4.0));
        assert_eq!(g.edge_weight(2, 2), None);
    }

    #[test]
    fn degree_statistics() {
        let g = triangle();
        assert_eq!(g.max_degree(), 2);
        assert!((g.average_degree() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn check_node_detects_out_of_range() {
        let g = triangle();
        assert!(g.check_node(2).is_ok());
        assert_eq!(g.check_node(3), Err(GraphError::UnknownNode(3)));
        assert_eq!(g.edge_weight(0, 99), None);
    }

    #[test]
    fn undirected_edge_iteration_visits_each_edge_once() {
        let g = triangle();
        let mut edges: Vec<_> = g.undirected_edges().collect();
        edges.sort_by_key(|e| (e.0, e.1));
        assert_eq!(edges, vec![(0, 1, 1.0), (0, 2, 4.0), (1, 2, 2.0)]);
        assert!((g.total_edge_weight() - 7.0).abs() < 1e-12);
    }

    #[test]
    fn isolated_vertices_have_zero_degree() {
        let b = GraphBuilder::new(4);
        let g = b.build();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.average_degree(), 0.0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn varint_roundtrip() {
        let mut buf = Vec::new();
        let values = [0u32, 1, 127, 128, 300, 16_383, 16_384, u32::MAX];
        for &v in &values {
            encode_varint(v, &mut buf);
        }
        let mut pos = 0;
        for &v in &values {
            let (decoded, next) = decode_varint(&buf, pos);
            assert_eq!(decoded, v);
            pos = next;
        }
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn compressed_layout_decodes_identically() {
        let g = triangle();
        let c = g.with_layout(CsrLayout::Compressed);
        assert_eq!(c.layout(), CsrLayout::Compressed);
        assert_eq!(c.node_count(), g.node_count());
        assert_eq!(c.edge_count(), g.edge_count());
        for v in g.nodes() {
            let a: Vec<Edge> = g.neighbors(v).collect();
            let b: Vec<Edge> = c.neighbors(v).collect();
            assert_eq!(a, b);
            assert_eq!(c.degree(v), g.degree(v));
            assert_eq!(c.neighbors(v).len(), g.degree(v));
        }
        // Round-trip back to the standard layout.
        let back = c.with_layout(CsrLayout::Standard);
        assert_eq!(back.layout(), CsrLayout::Standard);
        for v in g.nodes() {
            let a: Vec<Edge> = g.neighbors(v).collect();
            let b: Vec<Edge> = back.neighbors(v).collect();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn with_layout_same_layout_is_identity() {
        let g = triangle();
        let same = g.with_layout(CsrLayout::Standard);
        assert_eq!(same.layout(), CsrLayout::Standard);
        assert_eq!(
            same.undirected_edges().collect::<Vec<_>>(),
            g.undirected_edges().collect::<Vec<_>>()
        );
    }

    #[test]
    fn compressed_layout_shrinks_repeated_weight_graphs() {
        // A graph large enough for the dictionary to pay for itself: 2000
        // vertices in a ring with unit weights.
        let n = 2000u32;
        let g =
            GraphBuilder::from_edges(n as usize, (0..n).map(|i| (i, (i + 1) % n, 1.0))).unwrap();
        let c = g.with_layout(CsrLayout::Compressed);
        let standard = g.approx_heap_bytes();
        let compressed = c.approx_heap_bytes();
        assert!(
            (compressed as f64) < 0.75 * standard as f64,
            "compressed {compressed} not ≥25% below standard {standard}"
        );
        // Results stay bit-identical.
        for v in g.nodes() {
            assert_eq!(
                g.neighbors(v).collect::<Vec<_>>(),
                c.neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn weight_store_falls_back_to_inline_for_many_distinct_weights() {
        // Every edge gets a unique weight: the dictionary cannot win and the
        // store must keep exact inline f64s.
        let n = 64u32;
        let g = GraphBuilder::from_edges(
            n as usize,
            (0..n - 1).map(|i| (i, i + 1, 1.0 + i as f64 * 1e-3)),
        )
        .unwrap();
        let c = g.with_layout(CsrLayout::Compressed);
        for v in g.nodes() {
            assert_eq!(
                g.neighbors(v).collect::<Vec<_>>(),
                c.neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn wide_dictionary_serves_graphs_with_many_repeated_weights() {
        // More distinct weights than u16 can index (70 000 > 65 536) but
        // each repeated across half-edges: the u32 dictionary must win over
        // inline f64s and still decode bit-identically.
        let n = 100_000u32;
        let g = GraphBuilder::from_edges(
            n as usize,
            (0..n).map(|i| (i, (i + 1) % n, 1.0 + (i % 70_000) as f64 * 1e-6)),
        )
        .unwrap();
        let c = g.with_layout(CsrLayout::Compressed);
        assert!(
            c.approx_heap_bytes() < g.approx_heap_bytes(),
            "compressed {} not below standard {}",
            c.approx_heap_bytes(),
            g.approx_heap_bytes()
        );
        for v in [0u32, 1, 69_999, 70_000, n - 1] {
            assert_eq!(
                g.neighbors(v).collect::<Vec<_>>(),
                c.neighbors(v).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn neighbors_iterator_is_exact_size() {
        let g = triangle().with_layout(CsrLayout::Compressed);
        let mut it = g.neighbors(0);
        assert_eq!(it.len(), 2);
        it.next();
        assert_eq!(it.len(), 1);
        it.next();
        assert_eq!(it.len(), 0);
        assert!(it.next().is_none());
    }
}
