use std::fmt;

/// Errors raised by the social-graph substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// A vertex id is out of range for the graph it was used with.
    UnknownNode(u32),
    /// An edge definition is invalid (self loop with zero weight, negative
    /// or non-finite weight, ...).
    InvalidEdge(String),
    /// A requested configuration is invalid (e.g. zero landmarks).
    InvalidConfiguration(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownNode(id) => write!(f, "unknown graph node {id}"),
            GraphError::InvalidEdge(msg) => write!(f, "invalid edge: {msg}"),
            GraphError::InvalidConfiguration(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_contain_details() {
        assert!(GraphError::UnknownNode(9).to_string().contains('9'));
        assert!(GraphError::InvalidEdge("negative weight".into())
            .to_string()
            .contains("negative weight"));
        assert!(GraphError::InvalidConfiguration("M must be > 0".into())
            .to_string()
            .contains("M must be > 0"));
    }
}
