//! Reusable search state for the graph searches.
//!
//! Every SSRQ query runs at least one graph expansion (Dijkstra, A*, or the
//! shared forward search of the AIS distance module).  Allocating the dense
//! `dist` / `settled` / `parent` arrays per query costs `O(|V|)` work and
//! memory traffic *before the search settles a single vertex* — on large
//! graphs that dwarfs the work of a selective algorithm like AIS, whose
//! whole point is to touch a small neighbourhood.
//!
//! [`SearchScratch`] fixes this with epoch versioning: the arrays are
//! allocated once (per worker) and "cleared" by bumping a generation
//! counter.  An entry is valid only when its stored epoch matches the
//! current one, so [`SearchScratch::begin`] is `O(1)` (amortized — the
//! arrays still grow when a larger graph is seen, and the epoch counter
//! wrap-around forces a full refresh every `u32::MAX` searches).

use crate::dijkstra::HeapItem;
use crate::{Distance, NodeId};
use std::collections::BinaryHeap;

/// Reusable storage for one graph search: tentative distances, settled
/// marks, shortest-path-tree parents and the priority queue.
///
/// Create one per worker (typically inside a per-query context bundle) and
/// pass it to [`IncrementalDijkstra::new`](crate::IncrementalDijkstra::new) or
/// [`AStar::new`](crate::astar::AStar::new); each search calls
/// [`SearchScratch::begin`] itself, so the same scratch can back any number
/// of consecutive searches without reallocating.
///
/// A scratch is exclusively borrowed by the search using it, so stale state
/// can never leak between two searches — the epoch check makes entries from
/// previous searches invisible.
#[derive(Debug, Clone, Default)]
pub struct SearchScratch {
    /// Current generation; entries are valid iff their epoch matches.
    epoch: u32,
    /// Generation in which `dist[v]` / `parent[v]` were last written.
    dist_epoch: Vec<u32>,
    /// Tentative distance of each touched vertex.
    dist: Vec<Distance>,
    /// Generation in which vertex `v` was settled.
    settled_epoch: Vec<u32>,
    /// Shortest-path-tree parent of each touched vertex.
    parent: Vec<NodeId>,
    /// Priority queue storage, shared across searches.
    pub(crate) heap: BinaryHeap<HeapItem>,
    /// Number of searches that have used this scratch (diagnostics).
    resets: u64,
}

impl SearchScratch {
    /// An empty scratch; arrays grow on first use.
    pub fn new() -> Self {
        SearchScratch::default()
    }

    /// A scratch pre-sized for graphs of up to `n` vertices.
    pub fn with_capacity(n: usize) -> Self {
        let mut scratch = SearchScratch::new();
        scratch.grow(n);
        scratch
    }

    /// Number of vertices the arrays currently cover.
    pub fn capacity(&self) -> usize {
        self.dist.len()
    }

    /// How many searches have reused this scratch so far.
    pub fn resets(&self) -> u64 {
        self.resets
    }

    /// Starts a new search over a graph of `n` vertices: invalidates every
    /// entry (O(1) via the epoch bump) and empties the heap.
    pub fn begin(&mut self, n: usize) {
        self.grow(n);
        self.heap.clear();
        self.resets += 1;
        if self.epoch == u32::MAX {
            // Wrap-around: restart the generation sequence.  Epoch 0 must
            // not collide with old entries, so force-refresh the arrays.
            self.dist_epoch.fill(0);
            self.settled_epoch.fill(0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    fn grow(&mut self, n: usize) {
        if n > self.dist.len() {
            self.dist.resize(n, f64::INFINITY);
            self.dist_epoch.resize(n, 0);
            self.settled_epoch.resize(n, 0);
            self.parent.resize(n, 0);
        }
    }

    /// Tentative distance of `v` in the current search (`INFINITY` when the
    /// search has not touched `v`).
    #[inline]
    pub(crate) fn tentative(&self, v: NodeId) -> Distance {
        if self.dist_epoch[v as usize] == self.epoch {
            self.dist[v as usize]
        } else {
            f64::INFINITY
        }
    }

    /// Records a (tighter) tentative distance and tree parent for `v`.
    #[inline]
    pub(crate) fn set_tentative(&mut self, v: NodeId, d: Distance, parent: NodeId) {
        let slot = v as usize;
        self.dist[slot] = d;
        self.parent[slot] = parent;
        self.dist_epoch[slot] = self.epoch;
    }

    /// Whether `v` has been settled by the current search.
    #[inline]
    pub(crate) fn is_settled(&self, v: NodeId) -> bool {
        self.settled_epoch[v as usize] == self.epoch
    }

    /// Marks `v` as settled in the current search.
    #[inline]
    pub(crate) fn mark_settled(&mut self, v: NodeId) {
        self.settled_epoch[v as usize] = self.epoch;
    }

    /// Shortest-path-tree parent of `v` (meaningful only for vertices
    /// touched by the current search).
    #[inline]
    pub(crate) fn parent(&self, v: NodeId) -> NodeId {
        self.parent[v as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn begin_invalidates_previous_entries_without_reallocating() {
        let mut s = SearchScratch::with_capacity(8);
        s.begin(8);
        s.set_tentative(3, 1.5, 0);
        s.mark_settled(3);
        assert_eq!(s.tentative(3), 1.5);
        assert!(s.is_settled(3));

        s.begin(8);
        assert!(s.tentative(3).is_infinite(), "stale distance leaked");
        assert!(!s.is_settled(3), "stale settled mark leaked");
        assert_eq!(s.capacity(), 8);
        assert_eq!(s.resets(), 2);
    }

    #[test]
    fn scratch_grows_to_the_largest_graph_seen() {
        let mut s = SearchScratch::new();
        assert_eq!(s.capacity(), 0);
        s.begin(4);
        assert_eq!(s.capacity(), 4);
        s.begin(2);
        assert_eq!(s.capacity(), 4, "capacity must not shrink");
        s.begin(100);
        assert_eq!(s.capacity(), 100);
        assert!(s.tentative(99).is_infinite());
    }

    #[test]
    fn epoch_wraparound_refreshes_cleanly() {
        let mut s = SearchScratch::with_capacity(4);
        s.epoch = u32::MAX - 1;
        s.begin(4); // -> MAX
        s.set_tentative(1, 0.5, 1);
        s.mark_settled(1);
        s.begin(4); // wraps to 1
        assert!(s.tentative(1).is_infinite());
        assert!(!s.is_settled(1));
        s.set_tentative(2, 0.25, 2);
        assert_eq!(s.tentative(2), 0.25);
    }
}
