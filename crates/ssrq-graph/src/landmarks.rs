use crate::{dijkstra_all_with, Distance, GraphError, NodeId, SearchScratch, SocialGraph};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Landmark selection strategy (pre-processing of §2.3 / §4.2).
///
/// The paper uses the selection technique of Goldberg & Harrelson
/// ("A* search meets graph theory"), which is the farthest-first sweep; the
/// other strategies are provided for the ablation benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LandmarkSelection {
    /// Farthest-first traversal: each new landmark is the vertex farthest
    /// from all previously chosen landmarks (the strategy of \[25\]).
    FarthestFirst,
    /// Uniformly random vertices.
    Random,
    /// The vertices with the highest degree (hubs).
    HighestDegree,
}

/// A set of `M` landmarks together with the pre-computed distance from every
/// vertex to every landmark.
///
/// Landmark distances serve three purposes in the SSRQ system:
///
/// 1. triangle-inequality lower bounds on pairwise graph distances
///    ([`LandmarkSet::lower_bound`]), used to prune TSA candidates;
/// 2. the ALT heuristic of the reverse A* search inside the bidirectional
///    graph-distance module (§5.2);
/// 3. the per-cell social summaries (`m̂`, `m̌`) of the AIS index (§5.1),
///    which aggregate the per-vertex vectors stored here.
#[derive(Debug, Clone)]
pub struct LandmarkSet {
    landmarks: Vec<NodeId>,
    /// Distance from vertex `v` to landmark `j`, stored vertex-major:
    /// `dist[v * M + j]`.  Unreachable pairs hold `f64::INFINITY`.
    dist: Vec<Distance>,
    node_count: usize,
}

impl LandmarkSet {
    /// Selects `m` landmarks with the given strategy and pre-computes the
    /// distance vectors (one single-source Dijkstra per landmark).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::InvalidConfiguration`] when `m` is zero or the
    /// graph has no vertices.
    pub fn build(
        graph: &SocialGraph,
        m: usize,
        strategy: LandmarkSelection,
        seed: u64,
    ) -> Result<Self, GraphError> {
        if m == 0 {
            return Err(GraphError::InvalidConfiguration(
                "at least one landmark is required".into(),
            ));
        }
        if graph.node_count() == 0 {
            return Err(GraphError::InvalidConfiguration(
                "cannot select landmarks on an empty graph".into(),
            ));
        }
        let m = m.min(graph.node_count());
        let landmarks = match strategy {
            LandmarkSelection::Random => {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut ids: Vec<NodeId> = graph.nodes().collect();
                ids.shuffle(&mut rng);
                ids.truncate(m);
                ids
            }
            LandmarkSelection::HighestDegree => {
                let mut ids: Vec<NodeId> = graph.nodes().collect();
                ids.sort_by_key(|&v| std::cmp::Reverse(graph.degree(v)));
                ids.truncate(m);
                ids
            }
            LandmarkSelection::FarthestFirst => farthest_first(graph, m, seed),
        };

        let node_count = graph.node_count();
        let mut dist = vec![f64::INFINITY; node_count * landmarks.len()];
        // One scratch backs all M single-source sweeps.
        let mut scratch = SearchScratch::with_capacity(node_count);
        for (j, &lm) in landmarks.iter().enumerate() {
            let d = dijkstra_all_with(graph, lm, &mut scratch);
            for v in 0..node_count {
                dist[v * landmarks.len() + j] = d[v];
            }
        }
        Ok(LandmarkSet {
            landmarks,
            dist,
            node_count,
        })
    }

    /// Number of landmarks `M`.
    pub fn len(&self) -> usize {
        self.landmarks.len()
    }

    /// Returns `true` when the set holds no landmarks (never the case for a
    /// successfully built set).
    pub fn is_empty(&self) -> bool {
        self.landmarks.is_empty()
    }

    /// The selected landmark vertices.
    pub fn landmarks(&self) -> &[NodeId] {
        &self.landmarks
    }

    /// Distance from vertex `v` to landmark `j` (`m_{vj}` in the paper).
    #[inline]
    pub fn distance_to_landmark(&self, v: NodeId, j: usize) -> Distance {
        self.dist[v as usize * self.landmarks.len() + j]
    }

    /// The full landmark-distance vector of vertex `v`.
    #[inline]
    pub fn vector(&self, v: NodeId) -> &[Distance] {
        let m = self.landmarks.len();
        &self.dist[v as usize * m..(v as usize + 1) * m]
    }

    /// Triangle-inequality lower bound on the graph distance between `u` and
    /// `v`: `max_j |m_uj - m_vj|`.
    ///
    /// Pairs involving a vertex that cannot reach a landmark contribute no
    /// bound from that landmark (their difference would be `inf - inf`).
    pub fn lower_bound(&self, u: NodeId, v: NodeId) -> Distance {
        let m = self.landmarks.len();
        let ua = &self.dist[u as usize * m..u as usize * m + m];
        let va = &self.dist[v as usize * m..v as usize * m + m];
        let mut best = 0.0_f64;
        for j in 0..m {
            let (a, b) = (ua[j], va[j]);
            if a.is_finite() && b.is_finite() {
                let diff = (a - b).abs();
                if diff > best {
                    best = diff;
                }
            } else if a.is_finite() != b.is_finite() {
                // One side reaches the landmark, the other does not: the two
                // vertices are in different components.
                return f64::INFINITY;
            }
        }
        best
    }

    /// Number of vertices covered by the distance table.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Approximate heap footprint of the landmark tables in bytes (the
    /// `|V| × M` distance matrix dominates).  Like the graph, the set is
    /// immutable after construction and is shared behind an `Arc` by the
    /// engines of a partitioned deployment — these bytes are paid once.
    pub fn approx_heap_bytes(&self) -> usize {
        self.landmarks.capacity() * std::mem::size_of::<NodeId>()
            + self.dist.capacity() * std::mem::size_of::<Distance>()
    }
}

/// Farthest-first landmark sweep: start from a random vertex, repeatedly add
/// the vertex maximizing the distance to the closest already-chosen
/// landmark.  Vertices in unreachable components are skipped (they would
/// produce infinite, useless bounds for the main component).
fn farthest_first(graph: &SocialGraph, m: usize, seed: u64) -> Vec<NodeId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = graph.node_count();
    let first = rng.gen_range(0..n) as NodeId;
    let mut scratch = SearchScratch::with_capacity(n);

    // Distance to the closest chosen landmark so far.
    let mut closest = dijkstra_all_with(graph, first, &mut scratch);
    // Replace the random seed vertex by the farthest reachable vertex from
    // it; this avoids a poor (central) first landmark.
    let start = closest
        .iter()
        .enumerate()
        .filter(|(_, d)| d.is_finite())
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .map(|(v, _)| v as NodeId)
        .unwrap_or(first);

    let mut landmarks = vec![start];
    closest = dijkstra_all_with(graph, start, &mut scratch);
    while landmarks.len() < m {
        let next = closest
            .iter()
            .enumerate()
            .filter(|(_, d)| d.is_finite())
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(v, _)| v as NodeId);
        let Some(next) = next else { break };
        if landmarks.contains(&next) {
            break; // graph smaller than m reachable vertices
        }
        landmarks.push(next);
        let d = dijkstra_all_with(graph, next, &mut scratch);
        for v in 0..n {
            if d[v] < closest[v] {
                closest[v] = d[v];
            }
        }
    }
    landmarks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra_distance, GraphBuilder};

    fn path_graph(n: usize) -> SocialGraph {
        GraphBuilder::from_edges(n, (0..n - 1).map(|i| (i as NodeId, i as NodeId + 1, 1.0)))
            .unwrap()
    }

    #[test]
    fn rejects_invalid_configurations() {
        let g = path_graph(5);
        assert!(LandmarkSet::build(&g, 0, LandmarkSelection::Random, 1).is_err());
        let empty = GraphBuilder::new(0).build();
        assert!(LandmarkSet::build(&empty, 2, LandmarkSelection::Random, 1).is_err());
    }

    #[test]
    fn farthest_first_on_a_path_picks_the_endpoints() {
        let g = path_graph(10);
        let lms = LandmarkSet::build(&g, 2, LandmarkSelection::FarthestFirst, 7).unwrap();
        let mut picked: Vec<NodeId> = lms.landmarks().to_vec();
        picked.sort_unstable();
        assert_eq!(picked, vec![0, 9]);
    }

    #[test]
    fn highest_degree_picks_the_hub() {
        // Star graph: vertex 0 is the hub.
        let g = GraphBuilder::from_edges(6, (1..6).map(|i| (0, i as NodeId, 1.0))).unwrap();
        let lms = LandmarkSet::build(&g, 1, LandmarkSelection::HighestDegree, 1).unwrap();
        assert_eq!(lms.landmarks(), &[0]);
    }

    #[test]
    fn lower_bound_never_exceeds_true_distance() {
        let g = path_graph(12);
        for strategy in [
            LandmarkSelection::Random,
            LandmarkSelection::FarthestFirst,
            LandmarkSelection::HighestDegree,
        ] {
            let lms = LandmarkSet::build(&g, 3, strategy, 42).unwrap();
            for u in g.nodes() {
                for v in g.nodes() {
                    let lb = lms.lower_bound(u, v);
                    let d = dijkstra_distance(&g, u, v);
                    assert!(
                        lb <= d + 1e-9,
                        "lb {lb} exceeds distance {d} for ({u}, {v}) with {strategy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn lower_bound_is_exact_on_a_path_with_endpoint_landmark() {
        let g = path_graph(8);
        let lms = LandmarkSet::build(&g, 2, LandmarkSelection::FarthestFirst, 3).unwrap();
        // On a path with a landmark at an endpoint the triangle bound is
        // exact for every pair.
        for u in g.nodes() {
            for v in g.nodes() {
                let lb = lms.lower_bound(u, v);
                let d = dijkstra_distance(&g, u, v);
                assert!((lb - d).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn disconnected_vertices_get_infinite_bound() {
        let g = GraphBuilder::from_edges(5, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let lms = LandmarkSet::build(&g, 2, LandmarkSelection::FarthestFirst, 9).unwrap();
        // Both landmarks end up in a single component (they are chosen as
        // the vertices farthest from each other among reachable ones).  A
        // pair where exactly one vertex can reach a landmark is provably
        // disconnected, so its bound must be infinite.
        let lm_component: Vec<NodeId> = if lms.landmarks().iter().all(|&l| l <= 1) {
            vec![0, 1]
        } else {
            vec![2, 3]
        };
        let other: NodeId = if lm_component[0] == 0 { 2 } else { 0 };
        assert!(lms.lower_bound(lm_component[0], other).is_infinite());
        assert!(lms.lower_bound(lm_component[0], 4).is_infinite());
        // Same-component bounds stay finite.
        assert!(lms
            .lower_bound(lm_component[0], lm_component[1])
            .is_finite());
    }

    #[test]
    fn vector_returns_m_entries_per_vertex() {
        let g = path_graph(6);
        let lms = LandmarkSet::build(&g, 3, LandmarkSelection::Random, 5).unwrap();
        assert_eq!(lms.len(), 3);
        assert_eq!(lms.node_count(), 6);
        for v in g.nodes() {
            assert_eq!(lms.vector(v).len(), 3);
        }
    }

    #[test]
    fn m_larger_than_graph_is_clamped() {
        let g = path_graph(3);
        let lms = LandmarkSet::build(&g, 10, LandmarkSelection::FarthestFirst, 1).unwrap();
        assert!(lms.len() <= 3);
        assert!(!lms.is_empty());
    }

    #[test]
    fn distance_to_landmark_matches_dijkstra() {
        let g = path_graph(7);
        let lms = LandmarkSet::build(&g, 2, LandmarkSelection::FarthestFirst, 11).unwrap();
        for (j, &lm) in lms.landmarks().iter().enumerate() {
            for v in g.nodes() {
                assert_eq!(lms.distance_to_landmark(v, j), dijkstra_distance(&g, v, lm));
            }
        }
    }
}
