//! Point-to-point A* search with pluggable (consistent) heuristics.
//!
//! The SSRQ graph-distance module (§5.2) runs a *reverse* A* search from the
//! target vertex toward the query vertex, guided by landmark lower bounds
//! (the ALT heuristic of Goldberg & Harrelson).  The search here is
//! incremental — one settled vertex per call — so it can be interleaved with
//! the shared forward Dijkstra expansion.

use crate::dijkstra::HeapItem;
use crate::{Distance, LandmarkSet, NodeId, SearchScratch, SocialGraph};

/// A lower-bound estimator of the distance from a vertex to a fixed goal.
///
/// A* settles vertices with exact distances only if the heuristic is
/// *consistent* (`h(u) ≤ w(u, v) + h(v)`), which holds for the provided
/// implementations.
pub trait Heuristic {
    /// Lower bound on the graph distance from `v` to the goal.
    fn estimate(&self, v: NodeId) -> Distance;
}

/// The trivial heuristic (`h ≡ 0`); turns A* into plain Dijkstra.
#[derive(Debug, Clone, Copy, Default)]
pub struct ZeroHeuristic;

impl Heuristic for ZeroHeuristic {
    #[inline]
    fn estimate(&self, _v: NodeId) -> Distance {
        0.0
    }
}

/// The landmark (ALT) heuristic: `h(v) = max_j |m_vj − m_gj|` where `g` is
/// the goal vertex.
#[derive(Debug, Clone, Copy)]
pub struct LandmarkHeuristic<'a> {
    landmarks: &'a LandmarkSet,
    goal: NodeId,
}

impl<'a> LandmarkHeuristic<'a> {
    /// Creates an ALT heuristic towards `goal`.
    pub fn new(landmarks: &'a LandmarkSet, goal: NodeId) -> Self {
        LandmarkHeuristic { landmarks, goal }
    }
}

impl Heuristic for LandmarkHeuristic<'_> {
    #[inline]
    fn estimate(&self, v: NodeId) -> Distance {
        let lb = self.landmarks.lower_bound(v, self.goal);
        // An infinite bound means "different components"; returning it would
        // poison the heap keys, so clamp to a large finite value — the
        // search will simply never reach the goal.
        if lb.is_finite() {
            lb
        } else {
            f64::MAX / 4.0
        }
    }
}

/// An incremental A* search from a fixed source, guided by a heuristic
/// toward a goal vertex.
///
/// Because the heuristics used here are consistent, a vertex's `g` value is
/// exact when it is settled, just like in Dijkstra.
///
/// The search borrows its dense state from a [`SearchScratch`], so starting
/// one is `O(1)`; reuse the same scratch across consecutive searches.
#[derive(Debug)]
pub struct AStar<'s, H> {
    source: NodeId,
    heuristic: H,
    scratch: &'s mut SearchScratch,
    pops: usize,
    settled_count: usize,
}

impl<'s, H: Heuristic> AStar<'s, H> {
    /// Starts an A* expansion at `source`, drawing state from `scratch`
    /// (which is reset first).
    ///
    /// # Panics
    ///
    /// Panics if `source` is not a vertex of `graph`.
    pub fn new(
        graph: &SocialGraph,
        source: NodeId,
        heuristic: H,
        scratch: &'s mut SearchScratch,
    ) -> Self {
        assert!(
            graph.contains(source),
            "source vertex {source} out of range"
        );
        scratch.begin(graph.node_count());
        scratch.set_tentative(source, 0.0, source);
        scratch.heap.push(HeapItem {
            key: heuristic.estimate(source),
            node: source,
        });
        AStar {
            source,
            heuristic,
            scratch,
            pops: 0,
            settled_count: 0,
        }
    }

    /// The source vertex of the search.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// Settles and returns the next vertex (with its exact distance from the
    /// source), or `None` when no reachable vertex remains.
    pub fn next_settled(&mut self, graph: &SocialGraph) -> Option<(NodeId, Distance)> {
        while let Some(HeapItem { node, .. }) = self.scratch.heap.pop() {
            self.pops += 1;
            if self.scratch.is_settled(node) {
                continue;
            }
            self.scratch.mark_settled(node);
            self.settled_count += 1;
            let g_node = self.scratch.tentative(node);
            for edge in graph.neighbors(node) {
                let cand = g_node + edge.weight;
                if cand < self.scratch.tentative(edge.to) {
                    self.scratch.set_tentative(edge.to, cand, node);
                    self.scratch.heap.push(HeapItem {
                        key: cand + self.heuristic.estimate(edge.to),
                        node: edge.to,
                    });
                }
            }
            return Some((node, g_node));
        }
        None
    }

    /// Runs until `target` is settled; returns its exact distance
    /// (`INFINITY` when unreachable).
    pub fn run_until_settled(&mut self, graph: &SocialGraph, target: NodeId) -> Distance {
        if self.scratch.is_settled(target) {
            return self.scratch.tentative(target);
        }
        while let Some((node, d)) = self.next_settled(graph) {
            if node == target {
                return d;
            }
        }
        f64::INFINITY
    }

    /// Exact distance of `v` from the source, if `v` has been settled.
    #[inline]
    pub fn settled_distance(&self, v: NodeId) -> Option<Distance> {
        if self.scratch.is_settled(v) {
            Some(self.scratch.tentative(v))
        } else {
            None
        }
    }

    /// Returns `true` when `v` has been settled.
    #[inline]
    pub fn is_settled(&self, v: NodeId) -> bool {
        self.scratch.is_settled(v)
    }

    /// The smallest key (`g + h`) in the open heap — a lower bound on the
    /// `f`-value of every vertex that is yet to be settled.  `None` when the
    /// search is exhausted.
    pub fn min_key(&self) -> Option<Distance> {
        self.scratch
            .heap
            .iter()
            .map(|e| e.key)
            .fold(None, |acc, k| {
                Some(match acc {
                    None => k,
                    Some(a) if k < a => k,
                    Some(a) => a,
                })
            })
    }

    /// The key of the head of the heap (cheapest unexpanded entry), without
    /// scanning; may correspond to an already-settled (stale) vertex but is
    /// still a valid lower bound.
    pub fn peek_key(&self) -> Option<Distance> {
        self.scratch.heap.peek().map(|e| e.key)
    }

    /// Number of settled vertices.
    pub fn settled_count(&self) -> usize {
        self.settled_count
    }

    /// Number of heap pops.
    pub fn pops(&self) -> usize {
        self.pops
    }

    /// Returns `true` when the open heap is empty.
    pub fn exhausted(&self) -> bool {
        self.scratch.heap.is_empty()
    }
}

/// One-shot point-to-point A* distance with the ALT (landmark) heuristic.
pub fn alt_distance(
    graph: &SocialGraph,
    landmarks: &LandmarkSet,
    source: NodeId,
    target: NodeId,
) -> Distance {
    let heuristic = LandmarkHeuristic::new(landmarks, target);
    let mut scratch = SearchScratch::new();
    let mut search = AStar::new(graph, source, heuristic, &mut scratch);
    search.run_until_settled(graph, target)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dijkstra_distance, GraphBuilder, LandmarkSelection};
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_graph(n: usize, extra_edges: usize, seed: u64) -> SocialGraph {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut b = GraphBuilder::new(n);
        // Random spanning tree first so the graph is connected.
        for v in 1..n {
            let u = rng.gen_range(0..v);
            b.add_edge(u as NodeId, v as NodeId, rng.gen_range(0.1..2.0))
                .unwrap();
        }
        for _ in 0..extra_edges {
            let u = rng.gen_range(0..n);
            let v = rng.gen_range(0..n);
            if u != v {
                b.add_edge(u as NodeId, v as NodeId, rng.gen_range(0.1..2.0))
                    .unwrap();
            }
        }
        b.build()
    }

    #[test]
    fn zero_heuristic_equals_dijkstra() {
        let g = random_graph(60, 120, 1);
        let mut scratch = SearchScratch::new();
        for &(s, t) in &[(0u32, 59u32), (5, 42), (17, 17), (30, 2)] {
            let mut a = AStar::new(&g, s, ZeroHeuristic, &mut scratch);
            assert!((a.run_until_settled(&g, t) - dijkstra_distance(&g, s, t)).abs() < 1e-9);
        }
    }

    #[test]
    fn alt_distance_matches_dijkstra_on_random_graphs() {
        for seed in 0..3 {
            let g = random_graph(80, 160, seed);
            let lms = LandmarkSet::build(&g, 4, LandmarkSelection::FarthestFirst, seed).unwrap();
            let mut rng = StdRng::seed_from_u64(seed + 100);
            for _ in 0..20 {
                let s = rng.gen_range(0..80) as NodeId;
                let t = rng.gen_range(0..80) as NodeId;
                let expected = dijkstra_distance(&g, s, t);
                let got = alt_distance(&g, &lms, s, t);
                assert!(
                    (expected - got).abs() < 1e-9,
                    "seed {seed}: ALT {got} != Dijkstra {expected} for ({s}, {t})"
                );
            }
        }
    }

    #[test]
    fn alt_expands_no_more_vertices_than_dijkstra_on_average() {
        let g = random_graph(200, 500, 7);
        let lms = LandmarkSet::build(&g, 6, LandmarkSelection::FarthestFirst, 7).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut alt_pops = 0usize;
        let mut dij_pops = 0usize;
        let mut scratch = SearchScratch::new();
        for _ in 0..30 {
            let s = rng.gen_range(0..200) as NodeId;
            let t = rng.gen_range(0..200) as NodeId;
            let mut a = AStar::new(&g, s, LandmarkHeuristic::new(&lms, t), &mut scratch);
            a.run_until_settled(&g, t);
            alt_pops += a.settled_count();
            let mut d = AStar::new(&g, s, ZeroHeuristic, &mut scratch);
            d.run_until_settled(&g, t);
            dij_pops += d.settled_count();
        }
        assert!(
            alt_pops <= dij_pops,
            "ALT settled {alt_pops} vertices, plain Dijkstra {dij_pops}"
        );
    }

    #[test]
    fn unreachable_target_returns_infinity() {
        let g = GraphBuilder::from_edges(4, vec![(0, 1, 1.0), (2, 3, 1.0)]).unwrap();
        let lms = LandmarkSet::build(&g, 2, LandmarkSelection::FarthestFirst, 1).unwrap();
        assert!(alt_distance(&g, &lms, 0, 3).is_infinite());
    }

    #[test]
    fn incremental_interface_reports_state() {
        let g = random_graph(30, 40, 3);
        let lms = LandmarkSet::build(&g, 3, LandmarkSelection::FarthestFirst, 3).unwrap();
        let mut scratch = SearchScratch::new();
        let mut a = AStar::new(&g, 0, LandmarkHeuristic::new(&lms, 25), &mut scratch);
        assert_eq!(a.source(), 0);
        assert!(!a.exhausted());
        let (first, d0) = a.next_settled(&g).unwrap();
        assert_eq!(first, 0);
        assert_eq!(d0, 0.0);
        assert!(a.is_settled(0));
        assert_eq!(a.settled_distance(0), Some(0.0));
        assert!(a.peek_key().is_some());
        assert!(a.min_key().is_some());
        assert!(a.pops() >= 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn invalid_source_panics() {
        let g = random_graph(5, 0, 1);
        let mut scratch = SearchScratch::new();
        AStar::new(&g, 100, ZeroHeuristic, &mut scratch);
    }
}
