//! Quickstart: build a small geo-social dataset, index it, and answer a
//! Social-and-Spatial Ranking Query (SSRQ).
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use geosocial_ssrq::prelude::*;

fn main() {
    // 1. Generate a synthetic Gowalla-like dataset (10,000 users, average
    //    degree ~9.7, ~54% of users with a known location).
    let dataset = DatasetConfig::gowalla_like(10_000).generate();
    println!(
        "dataset: {} users, {} friendships, {} located users",
        dataset.user_count(),
        dataset.graph().edge_count(),
        dataset.located_user_count()
    );

    // 2. Build the query engine.  This constructs the landmark tables, the
    //    spatial grid, and the AIS aggregate index.
    let engine = GeoSocialEngine::build(dataset, EngineConfig::default())
        .expect("engine construction succeeds on a well-formed dataset");

    // 3. Pick a query user and ask for the top-10 companions, weighing
    //    social proximity at 30% and spatial proximity at 70% (the paper's
    //    default alpha = 0.3).
    let query_user = engine
        .dataset()
        .graph()
        .nodes()
        .find(|&u| engine.dataset().location(u).is_some() && engine.dataset().graph().degree(u) > 2)
        .expect("the generated dataset has eligible query users");
    let params = QueryParams::new(query_user, 10, 0.3);

    let result = engine
        .query(Algorithm::Ais, &params)
        .expect("valid parameters");

    println!(
        "\ntop-{} companions for user {} (alpha = {}):",
        params.k, params.user, params.alpha
    );
    println!(
        "{:>4}  {:>8}  {:>10}  {:>10}  {:>10}",
        "rank", "user", "f-score", "social", "spatial"
    );
    for (rank, entry) in result.ranked.iter().enumerate() {
        println!(
            "{:>4}  {:>8}  {:>10.4}  {:>10.4}  {:>10.4}",
            rank + 1,
            entry.user,
            entry.score,
            entry.social,
            entry.spatial
        );
    }

    println!(
        "\nsearch effort: {} graph vertices settled, {} index entries popped, {} users evaluated, {:?} elapsed",
        result.stats.social_pops,
        result.stats.index_pops,
        result.stats.evaluated_users,
        result.stats.runtime
    );

    // 4. The same query through the baseline algorithms returns the same
    //    users — only the amount of work differs.
    for algorithm in [Algorithm::Sfa, Algorithm::Spa, Algorithm::Tsa] {
        let other = engine.query(algorithm, &params).expect("valid parameters");
        assert_eq!(other.users(), result.users());
        println!(
            "{:<8} settled {:>7} graph vertices in {:?}",
            algorithm.name(),
            other.stats.social_pops,
            other.stats.runtime
        );
    }
}
