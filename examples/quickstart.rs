//! Quickstart: build a small geo-social dataset, index it, and answer a
//! Social-and-Spatial Ranking Query (SSRQ) through the builder / request /
//! session API.
//!
//! Run with:
//! ```sh
//! cargo run --release --example quickstart
//! ```

use geosocial_ssrq::prelude::*;

fn main() {
    // 1. Generate a synthetic Gowalla-like dataset (10,000 users, average
    //    degree ~9.7, ~54% of users with a known location).
    let dataset = DatasetConfig::gowalla_like(10_000).generate();
    println!(
        "dataset: {} users, {} friendships, {} located users",
        dataset.user_count(),
        dataset.graph().edge_count(),
        dataset.located_user_count()
    );

    // 2. Build the query engine fluently.  This constructs the landmark
    //    tables, the spatial grid, and the AIS aggregate index; expensive
    //    auxiliary indexes (Contraction Hierarchies, cached neighbour
    //    lists) would be *declared* here too and built lazily on first use.
    let engine = GeoSocialEngine::builder(dataset)
        .granularity(10)
        .landmarks(8)
        .build()
        .expect("engine construction succeeds on a well-formed dataset");

    // 3. Pick a query user and build a typed request: top-10 companions,
    //    weighing social proximity at 30% (the paper's default alpha = 0.3).
    let query_user = engine
        .dataset()
        .graph()
        .nodes()
        .find(|&u| engine.dataset().location(u).is_some() && engine.dataset().graph().degree(u) > 2)
        .expect("the generated dataset has eligible query users");
    let request = QueryRequest::for_user(query_user)
        .k(10)
        .alpha(0.3)
        .algorithm(Algorithm::Ais)
        .build()
        .expect("valid request");

    // 4. Run it through a session (owned, reused scratch — the recommended
    //    per-worker handle).
    let mut session = engine.session();
    let result = session.run(&request).expect("valid parameters");

    println!(
        "\ntop-{} companions for user {} (alpha = {}):",
        request.k(),
        request.user(),
        request.alpha()
    );
    println!(
        "{:>4}  {:>8}  {:>10}  {:>10}  {:>10}",
        "rank", "user", "f-score", "social", "spatial"
    );
    for (rank, entry) in result.ranked.iter().enumerate() {
        println!(
            "{:>4}  {:>8}  {:>10.4}  {:>10.4}  {:>10.4}",
            rank + 1,
            entry.user,
            entry.score,
            entry.social,
            entry.spatial
        );
    }

    println!(
        "\nsearch effort: {} graph vertices settled, {} index entries popped, {} users evaluated, {:?} elapsed",
        result.stats.social_pops,
        result.stats.index_pops,
        result.stats.evaluated_users,
        result.stats.runtime
    );

    // 5. The same request streamed, pull-lazily: each `next()` advances the
    //    resumable AIS search only until the incremental threshold
    //    finalizes another entry, so the first companion arrives after a
    //    fraction of the full query work.
    {
        // The stream borrows the session (its context hosts the search
        // state), so it lives in its own scope.
        let mut stream = session.stream(&request).expect("valid parameters");
        let first = stream.next().expect("the query has results");
        let work_at_first = stream.stats().relaxed_edges;
        let rest: Vec<_> = stream.by_ref().collect();
        println!(
            "streaming: first result (user {}) after {} of {} edge relaxations; \
             {} of {} entries were final before the search completed",
            first.user,
            work_at_first,
            stream.stats().relaxed_edges,
            stream.finalized_early(),
            1 + rest.len()
        );
    }

    // 6. The same query through the baseline algorithms returns the same
    //    users — only the amount of work differs.
    for algorithm in [Algorithm::Sfa, Algorithm::Spa, Algorithm::Tsa] {
        let other = session
            .run(&request.clone().with_algorithm(algorithm))
            .expect("valid parameters");
        assert_eq!(other.users(), result.users());
        println!(
            "{:<8} settled {:>7} graph vertices in {:?}",
            algorithm.name(),
            other.stats.social_pops,
            other.stats.runtime
        );
    }
}
