//! Continuous location updates — exercising the dynamic side of the AIS
//! index.
//!
//! The SSRQ problem setting assumes users move and only their *current*
//! location matters.  The AIS index was designed for exactly this: a move is
//! handled as a deletion from the old grid cell plus an insertion into the
//! new one, with the social summaries repaired along both paths.  This
//! example simulates a stream of location updates interleaved with queries
//! and verifies that the indexed algorithms keep agreeing with a brute-force
//! evaluation of the live data.
//!
//! Run with:
//! ```sh
//! cargo run --release --example location_updates
//! ```

use geosocial_ssrq::prelude::*;
use geosocial_ssrq::spatial::Point;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

fn main() {
    let dataset = DatasetConfig::gowalla_like(8_000).generate();
    let mut engine = GeoSocialEngine::builder(dataset)
        .build()
        .expect("engine builds");
    let mut rng = StdRng::seed_from_u64(2024);

    let query_user = engine
        .dataset()
        .graph()
        .nodes()
        .find(|&u| engine.dataset().location(u).is_some())
        .expect("located user exists");
    let request = QueryRequest::for_user(query_user)
        .k(15)
        .alpha(0.3)
        .algorithm(Algorithm::Ais)
        .build()
        .expect("valid request");

    let rounds = 20;
    let moves_per_round = 500;
    println!(
        "simulating {rounds} rounds of {moves_per_round} location updates each, querying user {query_user} after every round"
    );

    let mut total_update_time = std::time::Duration::ZERO;
    let mut total_query_time = std::time::Duration::ZERO;

    for round in 1..=rounds {
        // A batch of users report new positions (random walk with occasional
        // long jumps, clamped to the map).
        let started = Instant::now();
        for _ in 0..moves_per_round {
            let user = rng.gen_range(0..engine.dataset().user_count()) as u32;
            let new_location = match engine.dataset().location(user) {
                Some(p) if rng.gen_bool(0.9) => Point::new(
                    (p.x + rng.gen_range(-0.02..0.02)).clamp(0.0, 1.0),
                    (p.y + rng.gen_range(-0.02..0.02)).clamp(0.0, 1.0),
                ),
                _ => Point::new(rng.gen(), rng.gen()),
            };
            engine
                .update_location(user, new_location)
                .expect("update succeeds for valid users");
        }
        total_update_time += started.elapsed();

        // Query the live index and cross-check against the oracle.
        let started = Instant::now();
        let indexed = engine.run(&request).expect("query succeeds");
        total_query_time += started.elapsed();
        let oracle = engine
            .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
            .expect("query succeeds");
        assert!(
            indexed.same_users_and_scores(&oracle, 1e-9),
            "AIS diverged from the oracle after round {round}"
        );
        if round % 5 == 0 {
            println!(
                "round {round:>3}: AIS answered in {:?} ({} vertices settled), result head = {:?}",
                indexed.stats.runtime,
                indexed.stats.social_pops,
                &indexed.users()[..5.min(indexed.ranked.len())]
            );
        }
    }

    println!(
        "\nprocessed {} updates in {:?} ({:.1} µs/update) and {rounds} queries in {:?}",
        rounds * moves_per_round,
        total_update_time,
        total_update_time.as_micros() as f64 / (rounds * moves_per_round) as f64,
        total_query_time
    );
    println!("AIS stayed exact under continuous movement — no index rebuilds required.");
}
