//! Companion recommendation — the motivating scenario of the paper's
//! introduction, extended with the per-query scenario options of the
//! request API.
//!
//! A user looking for company for lunch browses nearby users.  A plain
//! k-nearest-neighbour search returns the geographically closest people, but
//! ignores how well the user actually knows them.  The SSRQ blends both
//! criteria; this example contrasts the two result sets, shows how the
//! preference parameter `alpha` moves the answer between the purely spatial
//! and the purely social extremes, and then narrows the search with a
//! spatial filter window ("downtown only"), an exclusion set ("already
//! asked them") and a score cutoff.
//!
//! Run with:
//! ```sh
//! cargo run --release --example lunch_companion
//! ```

use geosocial_ssrq::data::jaccard;
use geosocial_ssrq::prelude::*;

fn main() {
    // A dense, city-scale network: everyone has a location (think of an
    // app that only recommends users who are currently sharing theirs).
    let dataset = DatasetConfig::twitter_like(5_000).generate();
    let engine = GeoSocialEngine::builder(dataset)
        .build()
        .expect("engine builds");

    let query_user = engine
        .dataset()
        .graph()
        .nodes()
        .max_by_key(|&u| engine.dataset().graph().degree(u))
        .expect("non-empty dataset");
    let k = 10;
    let mut session = engine.session();

    // Purely spatial recommendation: the k nearest users by Euclidean
    // distance (what existing systems do).
    let location = engine
        .dataset()
        .location(query_user)
        .expect("twitter-like preset locates every user");
    let spatial_only: Vec<u32> = engine
        .grid()
        .k_nearest(location, k + 1)
        .into_iter()
        .map(|n| n.id)
        .filter(|&u| u != query_user)
        .take(k)
        .collect();
    println!("user {query_user} is looking for {k} lunch companions");
    println!("\nplain spatial k-NN recommendation: {spatial_only:?}");

    // SSRQ recommendations for increasingly social-minded preferences.
    println!(
        "\n{:>6}  {:<60}  {:>24}",
        "alpha", "SSRQ top-k (social+spatial)", "Jaccard vs spatial k-NN"
    );
    for alpha in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let request = QueryRequest::for_user(query_user)
            .k(k)
            .alpha(alpha)
            .algorithm(Algorithm::Ais)
            .build()
            .expect("valid request");
        let result = session.run(&request).expect("valid query");
        let users = result.users();
        let similarity = jaccard(&users, &spatial_only);
        println!(
            "{alpha:>6.1}  {:<60}  {similarity:>24.3}",
            format!("{users:?}")
        );
    }

    // Inspect the balanced recommendation in detail: how far away and how
    // socially close is each suggested companion?
    let balanced_request = QueryRequest::for_user(query_user)
        .k(k)
        .alpha(0.5)
        .algorithm(Algorithm::Ais)
        .build()
        .expect("valid request");
    let balanced = session.run(&balanced_request).expect("valid query");
    println!("\nbalanced recommendation (alpha = 0.5):");
    println!(
        "{:>8}  {:>10}  {:>16}  {:>16}",
        "user", "f-score", "social distance", "spatial distance"
    );
    for entry in &balanced.ranked {
        println!(
            "{:>8}  {:>10.4}  {:>16.4}  {:>16.4}",
            entry.user, entry.score, entry.social, entry.spatial
        );
    }

    // Scenario options: lunch downtown only, skip the two users we already
    // asked, and drop anyone beyond a combined-distance budget.  Every
    // algorithm honours the same filters, so the narrowed answer is still
    // exact.
    let downtown = Rect::new(
        Point::new(location.x - 0.15, location.y - 0.15),
        Point::new(location.x + 0.15, location.y + 0.15),
    );
    let already_asked: Vec<u32> = balanced.users().into_iter().take(2).collect();
    let narrowed_request = QueryRequest::for_user(query_user)
        .k(k)
        .alpha(0.5)
        .algorithm(Algorithm::Ais)
        .within(downtown)
        .exclude(already_asked.iter().copied())
        .max_score(0.6)
        .build()
        .expect("valid request");
    let narrowed = session.run(&narrowed_request).expect("valid query");
    println!(
        "\ndowntown-only, excluding {already_asked:?}, score < 0.6: {:?}",
        narrowed.users()
    );
    let oracle = session
        .run(
            &narrowed_request
                .clone()
                .with_algorithm(Algorithm::Exhaustive),
        )
        .expect("valid query");
    assert!(narrowed.same_users_and_scores(&oracle, 1e-9));
    println!("(verified exact against the brute-force oracle under the same filters)");

    println!(
        "\nThe low Jaccard overlap with the spatial-only list shows that the \
         joint query surfaces genuinely different companions — the same \
         observation as Figure 7(b) of the paper."
    );
}
