//! Side-by-side comparison of every SSRQ processing algorithm on the same
//! workload — a miniature version of the paper's Figure 8.
//!
//! Run with:
//! ```sh
//! cargo run --release --example algorithm_comparison
//! ```

use geosocial_ssrq::data::QueryWorkload;
use geosocial_ssrq::prelude::*;
use std::time::Duration;

fn main() {
    let users = std::env::args()
        .nth(1)
        .and_then(|s| s.parse::<usize>().ok())
        .unwrap_or(15_000);
    println!("generating a foursquare-like dataset with {users} users...");
    let dataset = DatasetConfig::foursquare_like(users).generate();
    let mut engine =
        GeoSocialEngine::build(dataset, EngineConfig::default()).expect("engine builds");

    let workload = QueryWorkload::generate(engine.dataset(), 30, 7)
        .with_k(30)
        .with_alpha(0.3);
    println!(
        "running {} queries (k = {}, alpha = {}) with every algorithm\n",
        workload.len(),
        workload.k,
        workload.alpha
    );

    // The CH baselines and the pre-computation method need their auxiliary
    // structures.
    println!("building the Contraction Hierarchies index (used only by the *-CH baselines)...");
    engine.build_contraction_hierarchy();
    engine.build_social_cache(&workload.users, 2_000);

    let algorithms = [
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
        Algorithm::SfaCached,
        Algorithm::SpaCh,
        Algorithm::TsaCh,
    ];

    println!(
        "\n{:<10} {:>14} {:>12} {:>14} {:>12}",
        "algorithm", "avg time", "pop ratio", "users eval.", "speed vs SFA"
    );
    let mut baseline: Option<Duration> = None;
    for algorithm in algorithms {
        let mut total = Duration::ZERO;
        let mut pops = 0usize;
        let mut evaluated = 0usize;
        let mut reference: Option<QueryResult> = None;
        for params in workload.params() {
            let result = engine.query(algorithm, &params).expect("query succeeds");
            total += result.stats.runtime;
            pops += result.stats.social_pops;
            evaluated += result.stats.evaluated_users;
            // Verify all algorithms agree on the first query.
            if reference.is_none() {
                let oracle = engine
                    .query(Algorithm::Exhaustive, &params)
                    .expect("query succeeds");
                assert!(result.same_users_and_scores(&oracle, 1e-9));
                reference = Some(oracle);
            }
        }
        let avg = total / workload.len() as u32;
        let pop_ratio = pops as f64 / (workload.len() * engine.dataset().user_count()) as f64;
        let speedup = baseline
            .map(|b| format!("{:>11.2}x", b.as_secs_f64() / avg.as_secs_f64().max(1e-12)))
            .unwrap_or_else(|| "    baseline".into());
        if baseline.is_none() {
            baseline = Some(avg);
        }
        println!(
            "{:<10} {:>14?} {:>12.4} {:>14} {:>12}",
            algorithm.name(),
            avg,
            pop_ratio,
            evaluated / workload.len(),
            speedup
        );
    }

    println!(
        "\nAIS settles a small fraction of the graph per query while the \
         one-domain baselines touch most of it — the headline result of the paper."
    );
}
