//! Side-by-side comparison of every SSRQ processing algorithm on the same
//! workload — a miniature version of the paper's Figure 8, driven through
//! the strategy registry.
//!
//! Run with:
//! ```sh
//! cargo run --release --example algorithm_comparison [users] [--with-ch]
//! ```
//!
//! The `*-CH` baselines are skipped unless `--with-ch` is passed: their
//! lazy Contraction Hierarchies build is (as the paper observes) extremely
//! expensive on hub-heavy social graphs.

use geosocial_ssrq::data::QueryWorkload;
use geosocial_ssrq::prelude::*;
use std::time::Duration;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let with_ch = args.iter().any(|a| a == "--with-ch");
    let users = args
        .iter()
        .find_map(|a| a.parse::<usize>().ok())
        .unwrap_or(15_000);
    println!("generating a foursquare-like dataset with {users} users...");
    let dataset = DatasetConfig::foursquare_like(users).generate();
    let workload = QueryWorkload::generate(&dataset, 30, 7)
        .with_k(30)
        .with_alpha(0.3);

    // Declare every auxiliary index at construction time: the Contraction
    // Hierarchies index builds lazily when the first *-CH query arrives,
    // the social neighbour cache eagerly for the workload users.
    let engine = GeoSocialEngine::builder(dataset)
        .with_ch(ChBuild::Lazy)
        .with_social_cache(SocialCachePlan::Eager {
            users: workload.users.clone(),
            t: 2_000,
        })
        .build()
        .expect("engine builds");
    println!("registered strategies: {:?}", engine.strategies().names());
    println!(
        "running {} queries (k = {}, alpha = {}) with every algorithm\n",
        workload.len(),
        workload.k,
        workload.alpha
    );

    let mut algorithms = vec![
        Algorithm::Sfa,
        Algorithm::Spa,
        Algorithm::Tsa,
        Algorithm::TsaQc,
        Algorithm::AisBid,
        Algorithm::AisMinus,
        Algorithm::Ais,
        Algorithm::SfaCached,
    ];
    if with_ch {
        algorithms.extend([Algorithm::SpaCh, Algorithm::TsaCh]);
    } else {
        println!("(pass --with-ch to include the SPA-CH / TSA-CH baselines — their lazy CH build is slow)");
    }

    println!(
        "{:<10} {:>14} {:>12} {:>14} {:>12}",
        "algorithm", "avg time", "pop ratio", "users eval.", "speed vs SFA"
    );
    let mut session = engine.session();
    let mut baseline: Option<Duration> = None;
    for algorithm in algorithms {
        let mut total = Duration::ZERO;
        let mut pops = 0usize;
        let mut evaluated = 0usize;
        let mut verified = false;
        for request in workload.requests(algorithm) {
            let result = session.run(&request).expect("query succeeds");
            total += result.stats.runtime;
            pops += result.stats.social_pops;
            evaluated += result.stats.evaluated_users;
            // Verify all algorithms agree on the first query.
            if !verified {
                let oracle = session
                    .run(&request.clone().with_algorithm(Algorithm::Exhaustive))
                    .expect("query succeeds");
                assert!(result.same_users_and_scores(&oracle, 1e-9));
                verified = true;
            }
        }
        let avg = total / workload.len() as u32;
        let pop_ratio = pops as f64 / (workload.len() * engine.dataset().user_count()) as f64;
        let speedup = baseline
            .map(|b| format!("{:>11.2}x", b.as_secs_f64() / avg.as_secs_f64().max(1e-12)))
            .unwrap_or_else(|| "    baseline".into());
        if baseline.is_none() {
            baseline = Some(avg);
        }
        println!(
            "{:<10} {:>14?} {:>12.4} {:>14} {:>12}",
            algorithm.name(),
            avg,
            pop_ratio,
            evaluated / workload.len(),
            speedup
        );
    }

    println!(
        "\nAIS settles a small fraction of the graph per query while the \
         one-domain baselines touch most of it — the headline result of the paper."
    );
}
