//! Sharded scatter-gather serving — the horizontal layer.
//!
//! Partitions a Gowalla-like dataset across N shards (spatial tiling),
//! answers queries by bounded scatter-gather (identical results to a single
//! engine — verified live against one), streams first results through the
//! cross-shard merge, routes live location updates (including migration
//! across shard boundaries) and finishes with a rebalance pass.
//!
//! Run with:
//! ```sh
//! cargo run --release --example sharded_serving [users] [shards]
//! ```

use geosocial_ssrq::data::QueryWorkload;
use geosocial_ssrq::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let users: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(12_000);
    let shards: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    println!("## Sharded serving — {users} users across {shards} shards\n");
    let dataset = DatasetConfig::gowalla_like(users).generate();
    let single = GeoSocialEngine::builder(dataset.clone())
        .build()
        .expect("single engine builds");

    let started = Instant::now();
    let mut sharded = ShardedEngine::builder(dataset)
        .shards(shards)
        .partitioning(Partitioning::SpatialGrid { cells_per_axis: 16 })
        .build()
        .expect("sharded engine builds");
    println!(
        "built {} shards in {:?}; occupancy {:?}",
        sharded.shard_count(),
        started.elapsed(),
        sharded.occupancy()
    );

    // --- scatter-gather queries, verified against the single engine -----
    let workload = QueryWorkload::generate(single.dataset(), 24, 7);
    let mut skipped = 0usize;
    let mut executed = 0usize;
    let mut session = sharded.session();
    for &user in &workload.users {
        let request = QueryRequest::for_user(user)
            .k(10)
            .alpha(0.3)
            .algorithm(Algorithm::Ais)
            .build()
            .expect("valid request");
        // Sequential best-first scatter: every shard sees the f_k gathered
        // so far, so the threshold/rect pruning gets to skip shards.
        let (result, stats) = sharded
            .run_with_stats_threads(&request, 1)
            .expect("scatter-gather succeeds");
        let reference = single.run(&request).expect("single engine succeeds");
        assert_eq!(
            result.ranked, reference.ranked,
            "sharded result must match the single engine"
        );
        skipped += stats.skipped_shards();
        executed += stats.executed_shards();
    }
    println!(
        "\n{} queries: every ranked list identical to the single engine",
        workload.users.len()
    );
    println!(
        "threshold + rect pruning skipped {skipped}/{} shard visits ({executed} executed)",
        skipped + executed
    );

    // --- cross-shard streaming: first result before full gather ---------
    let request = QueryRequest::for_user(workload.users[0])
        .k(10)
        .alpha(0.3)
        .algorithm(Algorithm::Ais)
        .build()
        .expect("valid request");
    let t0 = Instant::now();
    let mut stream = session.stream(&request).expect("stream starts");
    let first = stream.next();
    let first_latency = t0.elapsed();
    let rest: Vec<_> = stream.collect();
    let full_latency = t0.elapsed();
    println!(
        "\nstreaming: first of {} results after {:?} (full drain {:?}) — {:?}",
        1 + rest.len(),
        first_latency,
        full_latency,
        first.map(|e| e.user)
    );

    // --- batch throughput ------------------------------------------------
    let batch: Vec<QueryRequest> = workload
        .users
        .iter()
        .map(|&u| {
            QueryRequest::for_user(u)
                .k(10)
                .alpha(0.3)
                .algorithm(Algorithm::Ais)
                .build()
                .expect("valid request")
        })
        .collect();
    let t0 = Instant::now();
    let results = sharded.run_batch(&batch);
    let secs = t0.elapsed().as_secs_f64();
    let ok = results.iter().filter(|r| r.is_ok()).count();
    println!(
        "batch: {ok} queries in {:.1} ms ({:.0} q/s across all cores)",
        secs * 1e3,
        ok as f64 / secs.max(1e-9)
    );

    // --- routed updates + migration + rebalance --------------------------
    let mut rng = StdRng::seed_from_u64(99);
    let mut migrations = 0usize;
    for _ in 0..2_000 {
        let user = rng.gen_range(0..sharded.user_count()) as u32;
        let before = sharded.owner_of(user);
        let p = Point::new(rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0));
        sharded.update_location(user, p).expect("update routes");
        if sharded.owner_of(user) != before {
            migrations += 1;
        }
    }
    println!("\n2000 live updates routed; {migrations} users migrated across shard boundaries");
    println!("occupancy before rebalance: {:?}", sharded.occupancy());
    let report = sharded.rebalance();
    println!(
        "rebalance moved {} users; occupancy after: {:?}",
        report.moved_users, report.occupancy
    );
}
