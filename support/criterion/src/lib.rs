//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this crate supplies the
//! API subset the `ssrq-bench` benches use — [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — on top of a simple
//! warm-up + fixed-sample timing loop that prints mean and min time per
//! iteration.  It has none of the statistical machinery of the real crate;
//! its purpose is to keep the benches compiling, runnable and comparable
//! run-to-run.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, as in `criterion::black_box`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// A benchmark identifier: function name plus an optional parameter, printed
/// as `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id consisting of a parameter value only.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.name.is_empty(), &self.parameter) {
            (false, Some(p)) => write!(f, "{}/{}", self.name, p),
            (false, None) => write!(f, "{}", self.name),
            (true, Some(p)) => write!(f, "{p}"),
            (true, None) => Ok(()),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Drives the timing loop of one benchmark.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    /// Mean nanoseconds per iteration of the measured samples.
    result_ns: f64,
    min_ns: f64,
    iterations: u64,
}

impl Bencher {
    /// Times the closure: a warm-up phase first, then `sample_size` samples
    /// spread over the measurement window.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up, also used to estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.warm_up {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        // Choose an iteration count per sample so all samples fit in the
        // measurement window.
        let budget = self.measurement.as_secs_f64() / self.sample_size.max(1) as f64;
        let iters_per_sample = ((budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        let mut total_ns = 0.0;
        let mut min_ns = f64::INFINITY;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            let ns = start.elapsed().as_nanos() as f64 / iters_per_sample as f64;
            total_ns += ns;
            min_ns = min_ns.min(ns);
            total_iters += iters_per_sample;
        }
        self.result_ns = total_ns / self.sample_size.max(1) as f64;
        self.min_ns = min_ns;
        self.iterations = total_iters;
    }
}

/// A named group of related benchmarks sharing timing settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Warm-up duration before measurement starts.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total measurement window per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            result_ns: 0.0,
            min_ns: 0.0,
            iterations: 0,
        };
        f(&mut bencher);
        self.report(&id, &bencher);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    fn report(&self, id: &BenchmarkId, bencher: &Bencher) {
        println!(
            "{:<60} mean {:>12} min {:>12} ({} iterations)",
            format!("{}/{}", self.name, id),
            format_ns(bencher.result_ns),
            format_ns(bencher.min_ns),
            bencher.iterations
        );
    }

    /// Ends the group (a no-op here; kept for API compatibility).
    pub fn finish(self) {}
}

/// The top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(1),
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_string())
            .bench_function(BenchmarkId::from(name), f);
        self
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Declares a benchmark group function, mirroring `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_produces_a_positive_mean() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn benchmark_ids_render() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from("g").to_string(), "g");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
