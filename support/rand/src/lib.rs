//! Offline stand-in for the `rand` crate.
//!
//! The build environment of this repository has no access to crates.io, so
//! this small crate provides the subset of the `rand` 0.8 API the workspace
//! actually uses — [`Rng::gen`], [`Rng::gen_range`], [`Rng::gen_bool`],
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] and
//! [`seq::SliceRandom::shuffle`] — with the same shapes, so the calling code
//! is source-compatible with the real crate.
//!
//! The generator behind [`rngs::StdRng`] is xoshiro256++ seeded through
//! SplitMix64.  Streams are deterministic for a given seed (which is all the
//! test-suite relies on) but differ from the real `rand::rngs::StdRng`
//! (ChaCha12) streams.

#![forbid(unsafe_code)]

use std::ops::Range;

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from a half-open `low..high` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample empty range");
                let span = (high as i128 - low as i128) as u128;
                // Modulo bias is below 2^-64 for every span used here.
                let offset = (rng.next_u64() as u128 % span) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample empty range");
        let unit = unit_f64(rng.next_u64());
        let v = low + (high - low) * unit;
        // Guard against rounding up to the excluded endpoint.
        if v < high {
            v
        } else {
            low
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        f64::sample_range(rng, low as f64, high as f64) as f32
    }
}

/// Uniform in `[0, 1)` with 53 bits of precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Range shapes [`Rng::gen_range`] accepts (`low..high` and `low..=high`).
pub trait SampleRange {
    /// The sampled value type.
    type Output: SampleUniform;

    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl<T: SampleUniform> SampleRange for Range<T> {
    type Output = T;

    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end)
    }
}

impl SampleRange for std::ops::RangeInclusive<f64> {
    type Output = f64;

    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (low, high) = (*self.start(), *self.end());
        assert!(low <= high, "cannot sample empty range");
        // The chance of hitting the exact upper endpoint of a continuous
        // range is zero anyway; sampling the half-open range is adequate.
        if low == high {
            low
        } else {
            f64::sample_range(rng, low, high)
        }
    }
}

/// Types the blanket [`Rng::gen`] call can produce.
pub trait Standard: Sized {
    /// Draws one value with the type's standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        f64::sample_standard(rng) as f32
    }
}

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A value with the standard distribution of `T` (uniform `[0, 1)` for
    /// floats).
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform value from the range (`low..high` or `low..=high`).
    #[inline]
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of reproducible generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }
    }
}

/// The commonly imported items, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::rngs::StdRng;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut min = 1.0f64;
        let mut max = 0.0f64;
        for _ in 0..10_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            min = min.min(v);
            max = max.max(v);
        }
        assert!(min < 0.01);
        assert!(max > 0.99);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(11);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
        assert!(v.choose(&mut rng).is_some());
        let empty: [u32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
