//! Umbrella crate for the SSRQ (Social and Spatial Ranking Query) system.
//!
//! Re-exports the public APIs of the member crates so applications can use a
//! single dependency:
//!
//! * [`graph`] — social-graph substrate (CSR graph, Dijkstra, A*, landmarks,
//!   contraction hierarchies).
//! * [`spatial`] — spatial substrate (regular grid, multi-level grid,
//!   incremental nearest-neighbour search).
//! * [`data`] — synthetic geo-social dataset and workload generation.
//! * [`core`] — the SSRQ query itself and the processing algorithms
//!   (SFA, SPA, TSA, TSA-QC, AIS and variants).
//! * [`shard`] — the horizontal serving layer: partitioned engines with
//!   exact scatter-gather top-k and routed live updates.
//! * [`net`] — multi-process serving: shard servers behind a hand-rolled
//!   wire protocol over Unix-domain/TCP sockets and the remote
//!   scatter-gather coordinator.
//!
//! See the crate-level documentation of each module and `README.md` for a
//! quickstart.

pub use ssrq_core as core;
pub use ssrq_data as data;
pub use ssrq_graph as graph;
pub use ssrq_net as net;
pub use ssrq_shard as shard;
pub use ssrq_spatial as spatial;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use ssrq_core::{
        Algorithm, AlgorithmStrategy, ChBuild, EngineBuilder, GeoSocialEngine, QueryContext,
        QueryDriver, QueryRequest, QueryResult, QuerySession, QueryStream, RankedUser,
        SocialCachePlan, StepOutcome, StrategyRegistry,
    };
    pub use ssrq_data::{DatasetConfig, GeoSocialDataset};
    pub use ssrq_graph::{EdgeWeight, NodeId as GraphNodeId, SearchScratch, SocialGraph};
    pub use ssrq_net::{Endpoint, RemoteShardedEngine, ShardServer};
    pub use ssrq_shard::{FailurePolicy, Partitioning, ShardStats, ShardedEngine, ShardedSession};
    pub use ssrq_spatial::{Point, Rect};
}
